// Crash-safe sweeps: interrupted-then-resumed output must be
// byte-identical to an uninterrupted run, with only the incomplete
// scenarios re-executed; hung scenarios must be cut by the watchdog and
// journaled as timeouts without taking the rest of the grid down.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "runner/journal.hpp"
#include "runner/runner.hpp"

namespace {

using hpas::CancelReason;
using hpas::CancelToken;
using hpas::runner::JournalStatus;
using hpas::runner::read_journal;
using hpas::runner::run_sweep;
using hpas::runner::ScenarioSpec;
using hpas::runner::ScenarioStatus;
using hpas::runner::SweepGrid;
using hpas::runner::SweepOptions;
using hpas::runner::SweepResult;
using hpas::runner::write_outputs;

ScenarioSpec quick_scenario(const std::string& name, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.system = "voltrino";
  spec.app = "none";
  spec.anomaly = "none";
  spec.duration_s = 5.0;
  spec.sample_period_s = 1.0;
  spec.seed = seed;
  return spec;
}

/// A scenario that generates simulator events effectively forever: the
/// watchdog, not the grid, must end it.
ScenarioSpec hung_scenario(const std::string& name, std::uint64_t seed) {
  ScenarioSpec spec = quick_scenario(name, seed);
  spec.duration_s = 1e9;
  spec.sample_period_s = 0.001;  // a monitoring event every millisecond
  return spec;
}

SweepGrid quick_grid(std::size_t n) {
  SweepGrid grid;
  grid.name = "crash-resume";
  for (std::size_t i = 0; i < n; ++i)
    grid.scenarios.push_back(
        quick_scenario("s" + std::to_string(i), 1000 + i));
  return grid;
}

std::map<std::string, std::string> dir_contents(
    const std::filesystem::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == "sweep.journal") continue;  // wall times: not comparable
    std::ifstream in(entry.path(), std::ios::binary);
    files[name] = {std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  }
  return files;
}

class CrashResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("hpas-crash-resume-" + std::string(::testing::UnitTest::
                                                    GetInstance()
                                                        ->current_test_info()
                                                        ->name()));
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string out(const std::string& leaf) const {
    return (base_ / leaf).string();
  }

  std::filesystem::path base_;
};

TEST_F(CrashResumeTest, ResumeAfterInterruptionIsByteIdentical) {
  const SweepGrid grid = quick_grid(6);

  // Reference: one uninterrupted journaled run.
  SweepOptions full;
  full.threads = 2;
  full.journal_path = out("full") + "/sweep.journal";
  const SweepResult uninterrupted = run_sweep(grid, full);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.first_error();
  write_outputs(uninterrupted, out("full"));

  // "Crash" after half the grid: run only a prefix against the same
  // journal/output dir, exactly the on-disk state a SIGKILL leaves when
  // three scenarios had completed and checkpointed.
  SweepGrid prefix = grid;
  prefix.scenarios.resize(3);
  SweepOptions interrupted;
  interrupted.threads = 2;
  interrupted.journal_path = out("killed") + "/sweep.journal";
  ASSERT_TRUE(run_sweep(prefix, interrupted).ok());

  // Resume the FULL grid in the same directory.
  SweepOptions resume = interrupted;
  resume.resume = true;
  const SweepResult resumed = run_sweep(grid, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.first_error();
  write_outputs(resumed, out("killed"));

  // Only the missing half executed; the completed half was restored.
  EXPECT_EQ(resumed.resumed, 3u);
  EXPECT_EQ(resumed.executed, 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_TRUE(resumed.scenarios[i].resumed) << i;
  for (std::size_t i = 3; i < 6; ++i)
    EXPECT_FALSE(resumed.scenarios[i].resumed) << i;

  // The merged output is byte-identical to the uninterrupted run.
  EXPECT_EQ(dir_contents(out("full")), dir_contents(out("killed")));
}

TEST_F(CrashResumeTest, CorruptOutputOnDiskIsReRun) {
  const SweepGrid grid = quick_grid(3);
  SweepOptions options;
  options.threads = 1;
  options.journal_path = out("run") + "/sweep.journal";
  ASSERT_TRUE(run_sweep(grid, options).ok());

  // Tamper with one CSV; its journaled CRC no longer matches.
  {
    std::ofstream tamper(out("run") + "/s1.csv",
                         std::ios::binary | std::ios::app);
    tamper << "tampered\n";
  }
  SweepOptions resume = options;
  resume.resume = true;
  const SweepResult resumed = run_sweep(grid, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.first_error();
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.executed, 1u);
  EXPECT_FALSE(resumed.scenarios[1].resumed);
}

TEST_F(CrashResumeTest, DeletedOutputOnDiskIsReRun) {
  const SweepGrid grid = quick_grid(3);
  SweepOptions options;
  options.threads = 1;
  options.journal_path = out("run") + "/sweep.journal";
  ASSERT_TRUE(run_sweep(grid, options).ok());

  std::filesystem::remove(out("run") + "/s2.csv");
  SweepOptions resume = options;
  resume.resume = true;
  const SweepResult resumed = run_sweep(grid, resume);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.executed, 1u);
}

TEST_F(CrashResumeTest, ResumeSweepsOrphanedTmpFiles) {
  const SweepGrid grid = quick_grid(2);
  SweepOptions options;
  options.threads = 1;
  options.journal_path = out("run") + "/sweep.journal";
  ASSERT_TRUE(run_sweep(grid, options).ok());

  {
    std::ofstream orphan(out("run") + "/s0.csv.tmp", std::ios::binary);
    orphan << "half-written";
  }
  SweepOptions resume = options;
  resume.resume = true;
  const SweepResult resumed = run_sweep(grid, resume);
  EXPECT_EQ(resumed.tmp_removed, 1u);
  EXPECT_FALSE(std::filesystem::exists(out("run") + "/s0.csv.tmp"));
}

TEST_F(CrashResumeTest, TornJournalTailIsSelfHealed) {
  const SweepGrid grid = quick_grid(3);
  const std::string journal_path = out("run") + "/sweep.journal";
  SweepOptions options;
  options.threads = 1;
  options.journal_path = journal_path;
  ASSERT_TRUE(run_sweep(grid, options).ok());

  // Tear the tail as a crash mid-append would.
  const auto size = std::filesystem::file_size(journal_path);
  std::filesystem::resize_file(journal_path, size - 5);

  SweepOptions resume = options;
  resume.resume = true;
  const SweepResult resumed = run_sweep(grid, resume);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.journal_dropped, 1u);
  EXPECT_EQ(resumed.resumed, 2u);  // the torn record's scenario re-ran
  EXPECT_EQ(resumed.executed, 1u);

  // The rewritten journal reads back clean and complete.
  const auto read = read_journal(journal_path);
  EXPECT_TRUE(read.damage.empty()) << read.damage;
  EXPECT_EQ(read.records.size(), 3u);
}

TEST_F(CrashResumeTest, WatchdogCancelsHungScenarioAndSweepContinues) {
  SweepGrid grid;
  grid.name = "hung";
  grid.scenarios = {quick_scenario("before", 1), hung_scenario("stuck", 2),
                    quick_scenario("after", 3)};
  SweepOptions options;
  options.threads = 1;  // serial: the hung scenario blocks the lane
  options.capture_traces = true;
  options.scenario_timeout_s = 0.3;
  options.journal_path = out("run") + "/sweep.journal";

  const auto start = std::chrono::steady_clock::now();
  const SweepResult result = run_sweep(grid, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.scenarios[0].status, ScenarioStatus::kDone);
  EXPECT_EQ(result.scenarios[1].status, ScenarioStatus::kTimeout);
  EXPECT_EQ(result.scenarios[2].status, ScenarioStatus::kDone);
  EXPECT_EQ(result.count(ScenarioStatus::kTimeout), 1u);
  // Cancellation is cooperative but prompt: well under timeout + 1s.
  EXPECT_LT(elapsed, options.scenario_timeout_s + 10.0);

  // The truncated trace of the hung scenario still exists and is
  // journaled as a timeout.
  EXPECT_FALSE(result.scenarios[1].trace_bin.empty());
  const auto read = read_journal(options.journal_path);
  bool found = false;
  for (const auto& rec : read.records) {
    if (rec.name != "stuck") continue;
    found = true;
    EXPECT_EQ(rec.status, JournalStatus::kTimeout);
  }
  EXPECT_TRUE(found);

  // A timed-out scenario is not "done": resume re-runs it (and only it).
  write_outputs(result, out("run"));
  SweepOptions resume = options;
  resume.scenario_timeout_s = 0.0;  // no watchdog this time...
  resume.resume = true;
  SweepGrid finishable = grid;
  finishable.scenarios[1].duration_s = 5.0;  // ...and the grid is fixed
  finishable.scenarios[1].sample_period_s = 1.0;
  const SweepResult resumed = run_sweep(finishable, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.first_error();
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.executed, 1u);
}

TEST_F(CrashResumeTest, GracefulTokenDrainsAndResumeCompletes) {
  const SweepGrid grid = quick_grid(5);
  CancelToken graceful;
  graceful.cancel(CancelReason::kShutdown);  // "Ctrl-C before the sweep"

  SweepOptions options;
  options.threads = 1;
  options.journal_path = out("run") + "/sweep.journal";
  options.graceful = &graceful;
  const SweepResult drained = run_sweep(grid, options);

  EXPECT_TRUE(drained.interrupted);
  EXPECT_FALSE(drained.ok());
  // Nothing was interrupted mid-run -- a drain lets running scenarios
  // finish -- so every slot is either done or never started.
  for (const auto& s : drained.scenarios)
    EXPECT_TRUE(s.status == ScenarioStatus::kDone ||
                s.status == ScenarioStatus::kNotRun)
        << scenario_status_name(s.status);

  SweepOptions resume = options;
  resume.graceful = nullptr;
  resume.resume = true;
  const SweepResult resumed = run_sweep(grid, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.first_error();
  EXPECT_EQ(resumed.resumed + resumed.executed, 5u);
  EXPECT_EQ(resumed.resumed, drained.count(ScenarioStatus::kDone));
}

TEST_F(CrashResumeTest, HardTokenCancelsRunningScenarios) {
  SweepGrid grid;
  grid.name = "hard";
  grid.scenarios = {hung_scenario("h0", 1), hung_scenario("h1", 2)};
  CancelToken hard;

  SweepOptions options;
  options.threads = 2;
  options.journal_path = out("run") + "/sweep.journal";
  options.hard = &hard;

  std::thread killer([&hard] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    hard.cancel(CancelReason::kShutdown);
  });
  const SweepResult result = run_sweep(grid, options);
  killer.join();

  EXPECT_TRUE(result.interrupted);
  for (const auto& s : result.scenarios)
    EXPECT_TRUE(s.status == ScenarioStatus::kCancelled ||
                s.status == ScenarioStatus::kNotRun)
        << scenario_status_name(s.status);
  // The journal survived the hard cancel and is readable.
  const auto read = read_journal(options.journal_path);
  EXPECT_TRUE(read.damage.empty()) << read.damage;
  for (const auto& rec : read.records)
    EXPECT_EQ(rec.status, JournalStatus::kCancelled);
}

TEST_F(CrashResumeTest, SweepDeadlineCutsTheGrid) {
  SweepGrid grid;
  grid.name = "deadline";
  for (int i = 0; i < 3; ++i)
    grid.scenarios.push_back(hung_scenario("d" + std::to_string(i),
                                           static_cast<std::uint64_t>(i)));
  SweepOptions options;
  options.threads = 1;
  options.deadline_s = 0.3;

  const auto start = std::chrono::steady_clock::now();
  const SweepResult result = run_sweep(grid, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_TRUE(result.interrupted);
  EXPECT_FALSE(result.ok());
  EXPECT_LT(elapsed, 10.0);
}

}  // namespace
