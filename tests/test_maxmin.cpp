// Tests for max-min fair allocation (sim/maxmin.hpp), including the
// fairness properties the contention models rely on.
#include "sim/maxmin.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpas::sim {
namespace {

TEST(MaxMin, UnderloadedEveryoneSatisfied) {
  const std::vector<double> demands = {1.0, 2.0, 3.0};
  const auto alloc = max_min_allocate(10.0, demands);
  EXPECT_EQ(alloc, demands);
}

TEST(MaxMin, OverloadedEqualSplitAmongGreedy) {
  const std::vector<double> demands = {100.0, 100.0, 100.0, 100.0};
  const auto alloc = max_min_allocate(20.0, demands);
  for (const double a : alloc) EXPECT_DOUBLE_EQ(a, 5.0);
}

TEST(MaxMin, SmallDemandProtected) {
  // The classic max-min example: the small demand is fully served, the
  // rest split the remainder.
  const std::vector<double> demands = {2.0, 100.0, 100.0};
  const auto alloc = max_min_allocate(20.0, demands);
  EXPECT_DOUBLE_EQ(alloc[0], 2.0);
  EXPECT_DOUBLE_EQ(alloc[1], 9.0);
  EXPECT_DOUBLE_EQ(alloc[2], 9.0);
}

TEST(MaxMin, EmptyAndZeroCases) {
  EXPECT_TRUE(max_min_allocate(5.0, {}).empty());
  const std::vector<double> demands = {0.0, 4.0};
  const auto alloc = max_min_allocate(10.0, demands);
  EXPECT_DOUBLE_EQ(alloc[0], 0.0);
  EXPECT_DOUBLE_EQ(alloc[1], 4.0);
}

TEST(MaxMin, ZeroCapacityGivesNothing) {
  const std::vector<double> demands = {1.0, 2.0};
  const auto alloc = max_min_allocate(0.0, demands);
  EXPECT_DOUBLE_EQ(alloc[0], 0.0);
  EXPECT_DOUBLE_EQ(alloc[1], 0.0);
}

TEST(MaxMin, NegativeInputsRejected) {
  const std::vector<double> demands = {-1.0};
  EXPECT_THROW(max_min_allocate(1.0, demands), InvariantError);
  EXPECT_THROW(max_min_allocate(-1.0, std::vector<double>{1.0}),
               InvariantError);
}

TEST(MaxMinWeighted, SharesProportionalToWeights) {
  const std::vector<double> demands = {100.0, 100.0};
  const std::vector<double> weights = {1.0, 3.0};
  const auto alloc = max_min_allocate_weighted(8.0, demands, weights);
  EXPECT_DOUBLE_EQ(alloc[0], 2.0);
  EXPECT_DOUBLE_EQ(alloc[1], 6.0);
}

TEST(MaxMinWeighted, SizeMismatchRejected) {
  const std::vector<double> demands = {1.0, 2.0};
  const std::vector<double> weights = {1.0};
  EXPECT_THROW(max_min_allocate_weighted(1.0, demands, weights),
               InvariantError);
}

/// Property suite over random demand sets: the three defining max-min
/// invariants hold for every instance.
class MaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinProperty, Invariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003);
  const std::size_t n = 1 + rng.next_below(20);
  std::vector<double> demands(n);
  for (auto& d : demands) d = rng.uniform(0.0, 10.0);
  const double capacity = rng.uniform(0.5, 25.0);
  const auto alloc = max_min_allocate(capacity, demands);

  // (1) No allocation exceeds its demand.
  for (std::size_t i = 0; i < n; ++i) EXPECT_LE(alloc[i], demands[i] + 1e-9);

  // (2) Capacity respected.
  const double total = std::accumulate(alloc.begin(), alloc.end(), 0.0);
  EXPECT_LE(total, capacity + 1e-9);

  // (3) Pareto: either all demand met, or capacity exhausted.
  bool all_met = true;
  for (std::size_t i = 0; i < n; ++i)
    all_met = all_met && alloc[i] >= demands[i] - 1e-9;
  if (!all_met) {
    EXPECT_NEAR(total, capacity, 1e-9);
  }

  // (4) Fairness: an unsatisfied consumer's share is >= every other
  // consumer's share (no one smaller could be raised).
  for (std::size_t i = 0; i < n; ++i) {
    if (alloc[i] < demands[i] - 1e-9) {
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_GE(alloc[i], std::min(alloc[j], demands[i]) - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MaxMinProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace hpas::sim
