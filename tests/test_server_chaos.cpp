// The crash-consistency torture battery and server-hardening tests.
//
// The centerpiece enumerates EVERY crash point in the journal/cache write
// sequence (two per write, one per fsync/rename), forks a child that runs
// the same campaign and dies at exactly that point, restarts the server
// on the surviving bytes, and asserts the result frames are byte-identical
// to an uncrashed reference -- with zero re-execution for entries whose
// journal records survived. Around it: the scrubber quarantining corrupt
// spool bytes, LRU eviction under a spool cap, the per-connection
// deadline dropping stalled peers but not idle ones, the degraded serve
// path when the cache cannot persist, and the live-vs-stale socket probe.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "faultline/faultline.hpp"
#include "runner/grid.hpp"
#include "runner/journal.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace {

namespace fl = hpas::faultline;
using hpas::ConfigError;
using hpas::Json;
using hpas::runner::ScenarioSpec;
using hpas::server::Client;
using hpas::server::Server;
using hpas::server::ServerOptions;

ScenarioSpec quick_spec(const std::string& name, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.system = "voltrino";
  spec.app = "none";
  spec.anomaly = "none";
  spec.duration_s = 5.0;
  spec.sample_period_s = 1.0;
  spec.seed = seed;
  return spec;
}

Json submit_request(std::uint64_t id, const ScenarioSpec& spec) {
  Json request = Json::object();
  request.set("op", "submit");
  request.set("id", Json(id));
  request.set("spec", hpas::runner::spec_to_json(spec));
  return request;
}

/// Raw frame-level connection: byte-identity assertions compare unparsed
/// payloads, so serialization differences cannot hide.
class RawConn {
 public:
  explicit RawConn(const std::string& path)
      : fd_(hpas::server::connect_unix(path)) {}
  ~RawConn() { ::close(fd_); }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  void send(const Json& request) { hpas::server::write_json(fd_, request); }
  int fd() const { return fd_; }

  std::string recv_payload() {
    std::string payload;
    if (!hpas::server::read_frame(fd_, payload))
      throw std::runtime_error("server closed unexpectedly");
    return payload;
  }

 private:
  int fd_;
};

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fl::disarm();
    base_ = std::filesystem::temp_directory_path() /
            ("hpas-chaos-" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override {
    fl::disarm();
    std::filesystem::remove_all(base_);
  }

  ServerOptions options_for(const std::string& dir) const {
    ServerOptions opts;
    opts.data_dir = dir + "/data";
    opts.socket_path = dir + "/hpas.sock";
    opts.threads = 1;  // one worker: the I/O call sequence is deterministic
    return opts;
  }
  ServerOptions options() const { return options_for(base_.string()); }

  /// Start a server on `dir`, submit every spec sequentially, return the
  /// raw result-frame payloads. The deterministic campaign that the
  /// crash-point probe, the crashing children, and the reference run all
  /// share -- they must see the same wrapper-call sequence.
  std::vector<std::string> run_campaign(
      const std::string& dir, const std::vector<ScenarioSpec>& specs) {
    const ServerOptions opts = options_for(dir);
    Server server(opts);
    server.start();
    std::vector<std::string> frames;
    {
      RawConn conn(opts.socket_path);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        conn.send(submit_request(i + 1, specs[i]));
        (void)conn.recv_payload();  // accepted
        frames.push_back(conn.recv_payload());
      }
    }
    server.stop();
    return frames;
  }

  std::filesystem::path base_;
};

TEST_F(ChaosTest, ExhaustiveCrashPointBatteryRestartsByteIdentically) {
  const std::vector<ScenarioSpec> specs = {quick_spec("t0", 30),
                                           quick_spec("t1", 31)};

  // Reference pass: the uncrashed result-frame bytes.
  const std::vector<std::string> want =
      run_campaign((base_ / "ref").string(), specs);
  for (const std::string& frame : want)
    ASSERT_NE(frame.find("\"status\":\"done\""), std::string::npos) << frame;

  // Probe pass: arm a schedule whose crash never fires and count how
  // many crash points the campaign walks through. That count defines the
  // exhaustive enumeration below.
  fl::arm(fl::FaultSchedule{});
  (void)run_campaign((base_ / "probe").string(), specs);
  const std::uint64_t points = fl::crash_points_passed();
  fl::disarm();
  // Journal header (write + fsync = 3) plus, per scenario, the spool
  // write/fsync/rename and the journal record write/fsync (7 each).
  ASSERT_EQ(points, 17u);

  for (std::uint64_t k = 0; k < points; ++k) {
    const std::string dir = (base_ / ("crash" + std::to_string(k))).string();
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: the same campaign, dying at exactly crash point k -- as
      // if SIGKILLed mid-write (or with a torn half-written buffer).
      fl::FaultSchedule schedule;
      schedule.crash_at = static_cast<std::int64_t>(k);
      fl::arm(schedule);
      try {
        (void)run_campaign(dir, specs);
      } catch (...) {
      }
      ::_exit(0);  // unreachable for k < points
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "crash point " << k;
    ASSERT_EQ(WEXITSTATUS(status), 137) << "crash point " << k;

    // Restart, unarmed, on whatever bytes survived the crash. Every
    // journaled entry must serve byte-identically with no engine work;
    // everything else re-runs deterministically to the same bytes.
    const ServerOptions opts = options_for(dir);
    Server server(opts);
    server.start();
    const std::size_t restored = server.stats().restored;
    {
      RawConn conn(opts.socket_path);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        conn.send(submit_request(i + 1, specs[i]));
        (void)conn.recv_payload();  // accepted
        EXPECT_EQ(conn.recv_payload(), want[i])
            << "crash point " << k << ", spec " << i;
      }
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.cache_hits, restored) << "crash point " << k;
    EXPECT_EQ(stats.executed, specs.size() - restored)
        << "crash point " << k;
    server.stop();
  }

  // The battery's stop condition: a run armed one past the last point
  // outlives the whole write sequence and exits normally.
  const pid_t survivor = ::fork();
  ASSERT_GE(survivor, 0);
  if (survivor == 0) {
    fl::FaultSchedule schedule;
    schedule.crash_at = static_cast<std::int64_t>(points);
    fl::arm(schedule);
    try {
      (void)run_campaign((base_ / "past-the-end").string(), specs);
    } catch (...) {
      ::_exit(1);
    }
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(survivor, &status, 0), survivor);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST_F(ChaosTest, ScrubberQuarantinesCorruptionAndReRunRecaches) {
  ServerOptions opts = options();
  opts.scrub_interval_s = 0.02;
  const ScenarioSpec spec = quick_spec("scrubbed", 77);

  Server server(opts);
  server.start();

  std::string want;
  {
    RawConn conn(opts.socket_path);
    conn.send(submit_request(1, spec));
    (void)conn.recv_payload();
    want = conn.recv_payload();
    ASSERT_NE(want.find("\"status\":\"done\""), std::string::npos) << want;
  }

  // Bit-rot the spool file behind the running server's back.
  const std::string spool_dir = opts.data_dir + "/spool";
  std::string victim;
  for (const auto& entry : std::filesystem::directory_iterator(spool_dir))
    victim = entry.path().string();
  ASSERT_FALSE(victim.empty());
  {
    std::fstream file(victim, std::ios::in | std::ios::out |
                                  std::ios::binary);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(0);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }

  // The next scrub pass must CRC-catch it, quarantine the evidence, and
  // drop the entry.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().quarantined == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto stats = server.stats();
  ASSERT_EQ(stats.quarantined, 1u);
  EXPECT_GE(stats.scrub_passes, 1u);
  EXPECT_EQ(stats.cache_size, 0u);

  std::size_t quarantined_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           opts.data_dir + "/quarantine")) {
    (void)entry;
    ++quarantined_files;
  }
  EXPECT_EQ(quarantined_files, 1u);

  // Resubmission re-runs (no cache hit off bad bytes -- ever) and the
  // deterministic engine reproduces the original frame exactly.
  {
    RawConn conn(opts.socket_path);
    conn.send(submit_request(1, spec));
    const std::string ack = conn.recv_payload();
    EXPECT_NE(ack.find("\"cached\":false"), std::string::npos) << ack;
    EXPECT_EQ(conn.recv_payload(), want);
  }
  stats = server.stats();
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.cache_size, 1u);
  server.stop();

  // The re-cached entry survives a restart like any other.
  Server restarted(options_for(base_.string()));
  restarted.start();
  EXPECT_EQ(restarted.stats().restored, 1u);
  restarted.stop();
}

TEST_F(ChaosTest, SpoolCapEvictsLeastRecentlyServedByteIdentically) {
  const std::vector<ScenarioSpec> specs = {quick_spec("lru-a", 40),
                                           quick_spec("lru-b", 41),
                                           quick_spec("lru-c", 42)};

  // Size one cached result so the cap can be cut to hold exactly two.
  std::uint64_t one = 0;
  {
    Server sizing(options_for((base_ / "sizing").string()));
    sizing.start();
    RawConn conn(options_for((base_ / "sizing").string()).socket_path);
    conn.send(submit_request(1, specs[0]));
    (void)conn.recv_payload();
    (void)conn.recv_payload();
    one = sizing.stats().spool_bytes;
    sizing.stop();
  }
  ASSERT_GT(one, 0u);

  ServerOptions opts = options();
  opts.spool_cap_bytes = 2 * one + one / 2;
  Server server(opts);
  server.start();
  RawConn conn(opts.socket_path);

  std::vector<std::string> want;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    conn.send(submit_request(i + 1, specs[i]));
    (void)conn.recv_payload();
    want.push_back(conn.recv_payload());
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.evicted, 1u);  // lru-a, the least recently served
  EXPECT_EQ(stats.cache_size, 2u);
  EXPECT_LE(stats.spool_bytes, opts.spool_cap_bytes);

  // Survivors hit byte-identically...
  conn.send(submit_request(3, specs[2]));
  std::string ack = conn.recv_payload();
  EXPECT_NE(ack.find("\"cached\":true"), std::string::npos) << ack;
  EXPECT_EQ(conn.recv_payload(), want[2]);

  // ...and the evicted entry simply re-runs to the same bytes.
  conn.send(submit_request(1, specs[0]));
  ack = conn.recv_payload();
  EXPECT_NE(ack.find("\"cached\":false"), std::string::npos) << ack;
  EXPECT_EQ(conn.recv_payload(), want[0]);

  stats = server.stats();
  EXPECT_EQ(stats.executed, 4u);
  EXPECT_LE(stats.spool_bytes, opts.spool_cap_bytes);
  server.stop();

  // The journal was rewritten at each eviction: a restart restores
  // exactly the capped survivor set.
  Server restarted(opts);
  restarted.start();
  EXPECT_EQ(restarted.stats().restored, 2u);
  restarted.stop();
}

TEST_F(ChaosTest, CacheInsertFailureStillServesTheResult) {
  const ScenarioSpec spec = quick_spec("degraded", 55);
  const std::vector<std::string> want =
      run_campaign((base_ / "ref").string(), {spec});

  // Every spool write fails ENOSPC: the result cannot be persisted, but
  // the waiter still gets the full, byte-identical frame.
  fl::FaultSchedule schedule;
  schedule.rules.push_back({.domain = fl::Domain::kCache,
                            .op = fl::Op::kWrite,
                            .kind = fl::FaultKind::kErrno,
                            .err = ENOSPC,
                            .every = 1});
  fl::arm(schedule);
  const ServerOptions opts = options_for((base_ / "enospc").string());
  Server server(opts);
  server.start();
  {
    RawConn conn(opts.socket_path);
    conn.send(submit_request(1, spec));
    (void)conn.recv_payload();
    EXPECT_EQ(conn.recv_payload(), want[0]);
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.insert_errors, 1u);
  EXPECT_EQ(stats.cache_size, 0u);  // nothing durable, nothing cached
  server.stop();
  fl::disarm();

  // Same discipline when the journal append is what fails.
  fl::FaultSchedule journal_fault;
  journal_fault.rules.push_back({.domain = fl::Domain::kJournal,
                                 .op = fl::Op::kWrite,
                                 .kind = fl::FaultKind::kErrno,
                                 .err = EIO,
                                 .at = 1});  // the record after the header
  fl::arm(journal_fault);
  const ServerOptions jopts = options_for((base_ / "eio").string());
  Server jserver(jopts);
  jserver.start();
  {
    RawConn conn(jopts.socket_path);
    conn.send(submit_request(1, spec));
    (void)conn.recv_payload();
    EXPECT_EQ(conn.recv_payload(), want[0]);
  }
  EXPECT_EQ(jserver.stats().insert_errors, 1u);
  jserver.stop();
}

TEST_F(ChaosTest, StalledPeerIsDroppedIdlePeerSurvives) {
  ServerOptions opts = options();
  opts.io_timeout_s = 0.1;
  Server server(opts);
  server.start();

  // The idle client connects first and says nothing for several deadline
  // periods -- legitimate, must survive.
  Client idle = Client::connect(opts.socket_path);

  // The slowloris sends half a length prefix and stalls mid-frame.
  const int stalled = hpas::server::connect_unix(opts.socket_path);
  const unsigned char half_header[2] = {0x20, 0x00};
  ASSERT_EQ(::send(stalled, half_header, 2, MSG_NOSIGNAL), 2);

  // The server must cut the stalled connection: EOF on our end.
  pollfd pfd = {stalled, POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, 5000), 0) << "stalled peer was never dropped";
  char byte = 0;
  EXPECT_EQ(::recv(stalled, &byte, 1, 0), 0);
  ::close(stalled);

  // The idle client, silent through all of it, still gets service.
  idle.ping();
  Json pong;
  ASSERT_TRUE(idle.recv(pong));
  EXPECT_EQ(pong.string_or("type", ""), "pong");
  // And real work still flows end to end on that connection.
  idle.submit(1, quick_spec("after-stall", 60));
  EXPECT_EQ(idle.wait_result(1).string_or("status", ""), "done");
  server.stop();
}

TEST_F(ChaosTest, LiveSocketRefusedStaleSocketReclaimed) {
  ServerOptions opts = options();
  Server live(opts);
  live.start();

  // A second daemon pointed at the same socket (its own data dir) must
  // refuse loudly instead of yanking the live one's listener.
  ServerOptions other = options_for((base_ / "other").string());
  other.socket_path = opts.socket_path;
  Server intruder(other);
  EXPECT_THROW(intruder.start(), ConfigError);

  // The live daemon is unharmed by the probe.
  {
    Client client = Client::connect(opts.socket_path);
    client.ping();
    Json pong;
    ASSERT_TRUE(client.recv(pong));
    EXPECT_EQ(pong.string_or("type", ""), "pong");
  }
  live.stop();

  // SIGKILL leftovers: a bound-then-abandoned socket file. The probe
  // sees nobody answering and the next daemon reclaims the path.
  const int stale = hpas::server::listen_unix(opts.socket_path);
  ::close(stale);
  ASSERT_TRUE(std::filesystem::exists(opts.socket_path));
  Server reclaimed(opts);
  reclaimed.start();
  {
    Client client = Client::connect(opts.socket_path);
    client.ping();
    Json pong;
    ASSERT_TRUE(client.recv(pong));
    EXPECT_EQ(pong.string_or("type", ""), "pong");
  }
  reclaimed.stop();
}

}  // namespace
