// Tests for allocation policies and the node monitor (paper Sec. 5.2).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sched/monitor.hpp"
#include "sched/policies.hpp"
#include "sim/cluster.hpp"

namespace hpas::sched {
namespace {

std::vector<NodeStatus> uniform_status(int n, double load, double mem_free) {
  std::vector<NodeStatus> status;
  for (int i = 0; i < n; ++i)
    status.push_back({i, load, load, mem_free});
  return status;
}

TEST(RoundRobin, PicksLabelOrder) {
  const RoundRobinPolicy rr;
  auto status = uniform_status(8, 0.0, 1e9);
  // Shuffle the status vector; RR must still pick by label order.
  std::swap(status[0], status[5]);
  const auto nodes = rr.select_nodes(status, 4);
  EXPECT_EQ(nodes, (std::vector<int>{0, 1, 2, 3}));
}

TEST(RoundRobin, RejectsOversizedRequests) {
  const RoundRobinPolicy rr;
  EXPECT_THROW(rr.select_nodes(uniform_status(2, 0, 1), 3),
               hpas::ConfigError);
  EXPECT_THROW(rr.select_nodes(uniform_status(2, 0, 1), 0),
               hpas::ConfigError);
}

TEST(Wbas, ComputingCapacityFormula) {
  // CP = (1 - (5/6 cur + 1/6 avg)) * MemFree.
  const NodeStatus node{.node_id = 0,
                        .load_current = 0.6,
                        .load_5min_avg = 0.0,
                        .mem_free_bytes = 100.0};
  EXPECT_NEAR(WbasPolicy::computing_capacity(node), (1.0 - 0.5) * 100.0,
              1e-12);
}

TEST(Wbas, AvoidsLoadedAndMemoryStarvedNodes) {
  auto status = uniform_status(8, 0.0, 100e9);
  status[0].load_current = 1.0 / 32.0;   // cpuoccupy on one core
  status[0].load_5min_avg = 1.0 / 32.0;
  status[2].mem_free_bytes = 1e9;        // memleak squatting
  const WbasPolicy wbas;
  const auto nodes = wbas.select_nodes(status, 4);
  EXPECT_EQ(nodes, (std::vector<int>{1, 3, 4, 5}));  // the Fig. 11 outcome
}

TEST(Wbas, TiesBreakDeterministicallyByNodeId) {
  const WbasPolicy wbas;
  const auto nodes = wbas.select_nodes(uniform_status(6, 0.2, 1e9), 3);
  EXPECT_EQ(nodes, (std::vector<int>{0, 1, 2}));
}

TEST(Monitor, TracksLoadAndMemory) {
  auto world = sim::make_voltrino_world();
  // A full-node hog on node 1: 32 cores' worth? One compute task = 1 core.
  world->spawn_task("hog", 1, 0, sim::TaskProfile{},
                    sim::Phase::compute(1e18),
                    [](sim::Task&) { return sim::Phase::done(); });
  NodeMonitor monitor(*world, 10.0);
  monitor.sample_once();
  const auto status = monitor.status();
  ASSERT_EQ(status.size(), 8u);
  EXPECT_NEAR(status[1].load_current, 1.0 / 32.0, 1e-9);
  EXPECT_NEAR(status[0].load_current, 0.0, 1e-9);
  EXPECT_GT(status[0].mem_free_bytes, 100e9);
}

TEST(Monitor, FiveMinuteAverageLagsCurrentLoad) {
  auto world = sim::make_voltrino_world();
  NodeMonitor monitor(*world, 10.0);
  monitor.start();
  world->run_until(100.0);  // all-idle history
  // Hog arrives late; current load jumps, the average lags behind.
  world->spawn_task("hog", 0, 0, sim::TaskProfile{},
                    sim::Phase::compute(1e18),
                    [](sim::Task&) { return sim::Phase::done(); });
  world->run_until(121.0);
  const auto status = monitor.status();
  EXPECT_NEAR(status[0].load_current, 1.0 / 32.0, 1e-9);
  EXPECT_LT(status[0].load_5min_avg, status[0].load_current * 0.5);
}

TEST(Monitor, PeriodValidation) {
  auto world = sim::make_voltrino_world();
  EXPECT_THROW(NodeMonitor(*world, 0.0), hpas::InvariantError);
}

}  // namespace
}  // namespace hpas::sched
