// Tests for RingBuffer and Stopwatch (common/).
#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "common/ring_buffer.hpp"
#include "common/stopwatch.hpp"

namespace hpas {
namespace {

TEST(RingBuffer, FillsThenOverwritesOldest) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_FALSE(rb.full());
  rb.push(3);
  EXPECT_TRUE(rb.full());
  rb.push(4);  // evicts 1
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[1], 3);
  EXPECT_EQ(rb[2], 4);
  EXPECT_EQ(rb.back(), 4);
}

TEST(RingBuffer, ToVectorPreservesOrder) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 10; ++i) rb.push(i);
  EXPECT_EQ(rb.to_vector(), (std::vector<int>{6, 7, 8, 9}));
}

TEST(RingBuffer, IndexOutOfRangeThrows) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_THROW(rb[1], InvariantError);
  EXPECT_NO_THROW(rb[0]);
}

TEST(RingBuffer, BackOnEmptyThrows) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.back(), InvariantError);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb[0], 9);
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>(0), InvariantError);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = sw.elapsed_seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 2.0);  // generous upper bound for loaded CI hosts
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 0.015);
}

}  // namespace
}  // namespace hpas
