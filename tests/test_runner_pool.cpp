// Tests for the work-stealing thread pool (runner/thread_pool.hpp):
// execution completeness, bounded-queue backpressure, cancellation on
// first failure, and deterministic error reporting in parallel_for.
#include "runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hpas::runner {
namespace {

TEST(WorkStealingPool, ExecutesEverySubmittedTask) {
  WorkStealingPool pool({.threads = 4, .queue_capacity = 16});
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(WorkStealingPool, SingleThreadPoolStillDrains) {
  WorkStealingPool pool({.threads = 1, .queue_capacity = 4});
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
}

TEST(WorkStealingPool, ZeroThreadsMeansHardwareConcurrency) {
  WorkStealingPool pool({.threads = 0, .queue_capacity = 8});
  EXPECT_EQ(pool.thread_count(), WorkStealingPool::default_thread_count());
  EXPECT_GE(pool.thread_count(), 1);
}

TEST(WorkStealingPool, SubmitBlocksWhenQueueIsFull) {
  WorkStealingPool pool({.threads = 1, .queue_capacity = 2});
  std::promise<void> gate;
  std::shared_future<void> open(gate.get_future());

  // One task occupies the worker; two more fill the bounded queue.
  for (int i = 0; i < 3; ++i)
    pool.submit([open] { open.wait(); });

  std::atomic<bool> fourth_submitted{false};
  std::thread submitter([&] {
    pool.submit([] {});
    fourth_submitted.store(true);
  });
  // Backpressure: the submitter must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(fourth_submitted.load());

  gate.set_value();
  submitter.join();
  EXPECT_TRUE(fourth_submitted.load());
  pool.wait_idle();
}

TEST(WorkStealingPool, CancelDropsQueuedTasksAndUnblocksWaiters) {
  WorkStealingPool pool({.threads = 1, .queue_capacity = 64});
  std::promise<void> gate;
  std::shared_future<void> open(gate.get_future());
  std::atomic<int> ran{0};

  std::atomic<bool> started{false};
  pool.submit([open, &ran, &started] {
    started.store(true);
    open.wait();
    ran.fetch_add(1);
  });
  // Wait until the single worker is pinned inside the gated task before
  // queueing fillers (own-queue pop is LIFO: submitted earlier does not
  // mean started earlier).
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 10; ++i)
    pool.submit([&ran] { ran.fetch_add(1); });

  pool.request_cancel();
  gate.set_value();  // the running task finishes normally
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);  // queued tasks were dropped
  EXPECT_TRUE(pool.cancelled());

  // Submissions after cancellation are no-ops, not deadlocks.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, ComputesEveryIndexExactlyOnce) {
  WorkStealingPool pool({.threads = 4, .queue_capacity = 8});
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, RethrowsLowestIndexedFailure) {
  WorkStealingPool pool({.threads = 4, .queue_capacity = 8});
  try {
    parallel_for(pool, 50, [](std::size_t i) {
      if (i == 7 || i == 31)
        throw std::runtime_error("boom at " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Index 7 and 31 may both fire, but the report is the lowest index.
    EXPECT_STREQ(e.what(), "boom at 7");
  }
  EXPECT_TRUE(pool.cancelled());
}

TEST(ParallelFor, FailureCancelsRemainingWork) {
  WorkStealingPool pool({.threads = 2, .queue_capacity = 4});
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(pool, 1000,
                            [&](std::size_t i) {
                              ran.fetch_add(1);
                              if (i == 0) throw std::runtime_error("stop");
                            }),
               std::runtime_error);
  // Backpressure (capacity 4) bounds how far submission outran the
  // failure; nothing close to the full 1000 iterations may run.
  EXPECT_LT(ran.load(), 100);
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  WorkStealingPool pool({.threads = 2, .queue_capacity = 4});
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace hpas::runner
