// Tests for the DES engine (sim/engine/simulator.hpp).
#include "sim/engine/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace hpas::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimestampsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInUsesRelativeTime) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), InvariantError);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), InvariantError);
  EXPECT_THROW(sim.schedule_at(2.0, nullptr), InvariantError);
}

TEST(Simulator, CancelledEventsDoNotFire) {
  Simulator sim;
  int fired = 0;
  const EventHandle handle = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.cancel(handle);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelInvalidHandleIsNoop) {
  Simulator sim;
  sim.cancel(EventHandle{});
  sim.schedule_at(1.0, [] {});
  sim.run();  // no crash
}

TEST(Simulator, ManyCancellationsStayCorrect) {
  // Exercises the lazy-blacklist compaction (> 64 cancels).
  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i)
    handles.push_back(sim.schedule_at(1.0 + i, [&] { ++fired; }));
  for (int i = 0; i < 200; i += 2) sim.cancel(handles[static_cast<std::size_t>(i)]);
  sim.run();
  EXPECT_EQ(fired, 100);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventAtExactBoundaryIncluded) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsScheduledDuringRunFire) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace hpas::sim
