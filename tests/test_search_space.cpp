// Property tests for the typed scenario-space abstraction: validation
// rejects malformed spaces; sampling/mutation/crossover stay in bounds
// and canonical; categoricals are never interpolated; seeded sequences
// are bit-reproducible; point identity (hash -> name/seed) is stable.
#include "search/space.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using hpas::ConfigError;
using hpas::Json;
using hpas::Rng;
using hpas::search::DimKind;
using hpas::search::Point;
using hpas::search::ScenarioSpace;

const char* kSpaceText = R"({
  "name": "test_space",
  "system": "voltrino",
  "seed": 42,
  "app": "CoMD",
  "duration_s": 20,
  "sample_period_s": 1.0,
  "dimensions": [
    {"name": "app", "type": "categorical", "values": ["CoMD", "milc"]},
    {"name": "anomaly", "type": "categorical",
     "values": ["cpuoccupy", "cachecopy", "membw"]},
    {"name": "intensity", "type": "continuous", "lo": 0.25, "hi": 2.0},
    {"name": "ranks_per_node", "type": "integer", "lo": 1, "hi": 4}
  ]
})";

ScenarioSpace test_space() {
  return ScenarioSpace::from_json(Json::parse(kSpaceText));
}

TEST(SearchSpace, ParsesDimensionsAndBase) {
  const ScenarioSpace space = test_space();
  EXPECT_EQ(space.name(), "test_space");
  EXPECT_EQ(space.base_seed(), 42u);
  EXPECT_EQ(space.size(), 4u);
  EXPECT_EQ(space.dimensions()[0].kind, DimKind::kCategorical);
  EXPECT_EQ(space.dimensions()[2].kind, DimKind::kContinuous);
  EXPECT_EQ(space.dimensions()[3].kind, DimKind::kInteger);
  EXPECT_EQ(space.base().app, "CoMD");
  EXPECT_DOUBLE_EQ(space.base().duration_s, 20.0);
}

TEST(SearchSpace, RejectsMalformedSpaces) {
  const auto parse = [](const std::string& text) {
    return ScenarioSpace::from_json(Json::parse(text));
  };
  // No dimensions.
  EXPECT_THROW(parse(R"({"name": "x"})"), ConfigError);
  // Unknown field.
  EXPECT_THROW(parse(R"({"dimensions": [
    {"name": "nonsense", "type": "continuous", "lo": 0, "hi": 1}]})"),
               ConfigError);
  // A continuous binding of a categorical field.
  EXPECT_THROW(parse(R"({"dimensions": [
    {"name": "app", "type": "continuous", "lo": 0, "hi": 1}]})"),
               ConfigError);
  // A continuous binding of an integral field.
  EXPECT_THROW(parse(R"({"dimensions": [
    {"name": "app_nodes", "type": "continuous", "lo": 1, "hi": 2}]})"),
               ConfigError);
  // Inverted bounds.
  EXPECT_THROW(parse(R"({"dimensions": [
    {"name": "intensity", "type": "continuous", "lo": 2, "hi": 1}]})"),
               ConfigError);
  // Bounds outside the field's domain.
  EXPECT_THROW(parse(R"({"dimensions": [
    {"name": "intensity", "type": "continuous", "lo": -1, "hi": 1}]})"),
               ConfigError);
  // Unknown category values.
  EXPECT_THROW(parse(R"({"dimensions": [
    {"name": "anomaly", "type": "categorical", "values": ["bogus"]}]})"),
               ConfigError);
  EXPECT_THROW(parse(R"({"dimensions": [
    {"name": "app", "type": "categorical", "values": ["NotAnApp"]}]})"),
               ConfigError);
  // Duplicate dimensions.
  EXPECT_THROW(parse(R"({"dimensions": [
    {"name": "intensity", "type": "continuous", "lo": 0.5, "hi": 1},
    {"name": "intensity", "type": "continuous", "lo": 0.5, "hi": 1}]})"),
               ConfigError);
}

TEST(SearchSpace, SamplesAreAlwaysInBounds) {
  const ScenarioSpace space = test_space();
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Point p = space.sample(rng);
    EXPECT_TRUE(space.in_bounds(p));
  }
}

TEST(SearchSpace, MutationsAndCrossoversStayInBounds) {
  const ScenarioSpace space = test_space();
  Rng rng(11);
  Point p = space.sample(rng);
  Point q = space.sample(rng);
  for (int i = 0; i < 1000; ++i) {
    const Point m = space.mutate(p, rng, 0.5);
    ASSERT_TRUE(space.in_bounds(m)) << "mutation escaped bounds at step "
                                    << i;
    const Point c = space.crossover(p, q, rng);
    ASSERT_TRUE(space.in_bounds(c));
    q = p;
    p = m;
  }
}

TEST(SearchSpace, CategoricalsNeverInterpolate) {
  const ScenarioSpace space = test_space();
  Rng rng(13);
  Point p = space.sample(rng);
  for (int i = 0; i < 500; ++i) {
    // Mutate the anomaly dimension (index 1, three categories).
    const Point m = space.mutate_dimension(p, 1, rng, 0.5);
    const double v = m.coords[1];
    ASSERT_EQ(v, std::round(v)) << "categorical coordinate interpolated";
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 3.0);
    ASSERT_NE(v, p.coords[1]) << "categorical mutation must move";
    p = m;
  }
}

TEST(SearchSpace, CrossoverCopiesParentCoordinatesVerbatim) {
  const ScenarioSpace space = test_space();
  Rng rng(17);
  const Point a = space.sample(rng);
  const Point b = space.sample(rng);
  for (int i = 0; i < 200; ++i) {
    const Point c = space.crossover(a, b, rng);
    for (std::size_t d = 0; d < space.size(); ++d) {
      ASSERT_TRUE(c.coords[d] == a.coords[d] || c.coords[d] == b.coords[d])
          << "crossover invented a coordinate in dimension " << d;
    }
  }
}

TEST(SearchSpace, SeededSequencesAreReproducible) {
  const ScenarioSpace space = test_space();
  Rng rng1(123), rng2(123), rng3(456);
  bool any_differs = false;
  Point p1 = space.sample(rng1);
  Point p2 = space.sample(rng2);
  Point p3 = space.sample(rng3);
  EXPECT_EQ(p1.coords, p2.coords);
  for (int i = 0; i < 200; ++i) {
    p1 = space.mutate(p1, rng1, 0.3);
    p2 = space.mutate(p2, rng2, 0.3);
    p3 = space.mutate(p3, rng3, 0.3);
    ASSERT_EQ(p1.coords, p2.coords) << "same-seed sequences diverged";
    if (p1.coords != p3.coords) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds produced identical walks";
}

TEST(SearchSpace, PointIdentityIsStable) {
  const ScenarioSpace space = test_space();
  Point p;
  p.coords = {1.0, 2.0, 0.5, 3.0};  // milc, membw, x0.5, 3 ranks
  const Point q = p;
  EXPECT_EQ(space.point_hash(p), space.point_hash(q));

  const auto spec = space.materialize(p);
  const auto spec2 = space.materialize(q);
  EXPECT_EQ(spec.name, spec2.name);
  EXPECT_EQ(spec.seed, spec2.seed);
  ASSERT_EQ(spec.name.size(), 17u);  // "e" + 16 hex digits
  EXPECT_EQ(spec.name[0], 'e');

  // The point binds onto the base spec.
  EXPECT_EQ(spec.app, "milc");
  EXPECT_EQ(spec.anomaly, "membw");
  EXPECT_DOUBLE_EQ(spec.intensity, 0.5);
  EXPECT_EQ(spec.ranks_per_node, 3);
  EXPECT_EQ(spec.system, "voltrino");
  EXPECT_DOUBLE_EQ(spec.duration_s, 20.0);

  // A different point gets a different identity.
  Point r = p;
  r.coords[2] = 0.75;
  EXPECT_NE(space.point_hash(p), space.point_hash(r));
  EXPECT_NE(space.materialize(r).name, spec.name);
}

TEST(SearchSpace, ClampCanonicalizes) {
  const ScenarioSpace space = test_space();
  Point wild;
  wild.coords = {7.3, -2.0, 99.0, 2.4};
  const Point c = space.clamp(wild);
  EXPECT_TRUE(space.in_bounds(c));
  EXPECT_EQ(c.coords[0], 1.0);   // categorical clamped to last index
  EXPECT_EQ(c.coords[1], 0.0);   // categorical clamped to first index
  EXPECT_EQ(c.coords[2], 2.0);   // continuous clipped to hi
  EXPECT_EQ(c.coords[3], 2.0);   // integer rounded
}

TEST(SearchSpace, PointJsonNamesDimensionValues) {
  const ScenarioSpace space = test_space();
  Point p;
  p.coords = {0.0, 2.0, 1.25, 4.0};
  const Json doc = space.point_json(p);
  EXPECT_EQ(doc.find("app")->as_string(), "CoMD");
  EXPECT_EQ(doc.find("anomaly")->as_string(), "membw");
  EXPECT_DOUBLE_EQ(doc.find("intensity")->as_number(), 1.25);
  EXPECT_DOUBLE_EQ(doc.find("ranks_per_node")->as_number(), 4.0);
}

}  // namespace
