// Tests for the shared-filesystem model (sim/storage.hpp).
#include "sim/storage.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"

namespace hpas::sim {
namespace {

std::unique_ptr<Task> io_task(IoKind kind) {
  TaskProfile profile;
  auto task = std::make_unique<Task>("io", 0, 0, profile,
                                     [](Task&) { return Phase::done(); });
  task->set_phase(Phase::io(kind, 1e12));
  return task;
}

FsConfig nfs_config() {
  return FsConfig{.metadata_ops_per_s = 3000.0,
                  .disk_write_bw = 300.0e6,
                  .disk_read_bw = 330.0e6,
                  .dedicated_mds = false,
                  .metadata_disk_cost_s = 1.0e-4};
}

TEST(Storage, SoloWriterGetsFullDisk) {
  Filesystem fs(nfs_config());
  auto writer = io_task(IoKind::kWrite);
  std::vector<Task*> tasks = {writer.get()};
  fs.compute_rates(tasks);
  EXPECT_NEAR(writer->rates().progress, 300.0e6, 1.0);
}

TEST(Storage, ReadAndWriteBandwidthsDiffer) {
  Filesystem fs(nfs_config());
  auto reader = io_task(IoKind::kRead);
  std::vector<Task*> tasks = {reader.get()};
  fs.compute_rates(tasks);
  EXPECT_NEAR(reader->rates().progress, 330.0e6, 1.0);
}

TEST(Storage, WritersShareDiskEqually) {
  Filesystem fs(nfs_config());
  auto w1 = io_task(IoKind::kWrite);
  auto w2 = io_task(IoKind::kWrite);
  auto w3 = io_task(IoKind::kWrite);
  std::vector<Task*> tasks = {w1.get(), w2.get(), w3.get()};
  fs.compute_rates(tasks);
  EXPECT_NEAR(w1->rates().progress, 100.0e6, 1.0);
  EXPECT_NEAR(w3->rates().progress, 100.0e6, 1.0);
}

TEST(Storage, SoloMetadataClientGetsMdsRate) {
  Filesystem fs(nfs_config());
  auto meta = io_task(IoKind::kMetadata);
  std::vector<Task*> tasks = {meta.get()};
  fs.compute_rates(tasks);
  EXPECT_NEAR(meta->rates().progress, 3000.0, 1e-6);
}

TEST(Storage, MetadataClientsShareMds) {
  Filesystem fs(nfs_config());
  auto m1 = io_task(IoKind::kMetadata);
  auto m2 = io_task(IoKind::kMetadata);
  std::vector<Task*> tasks = {m1.get(), m2.get()};
  fs.compute_rates(tasks);
  EXPECT_NEAR(m1->rates().progress, 1500.0, 1e-6);
}

TEST(Storage, MetadataEatsDiskTimeWithoutDedicatedMds) {
  // The Fig. 7 coupling: metadata load reduces writer bandwidth on an
  // NFS-like (no-MDS) deployment.
  Filesystem fs(nfs_config());
  auto writer = io_task(IoKind::kWrite);
  auto meta = io_task(IoKind::kMetadata);
  std::vector<Task*> tasks = {writer.get(), meta.get()};
  fs.compute_rates(tasks);
  // Metadata's finite demand: 1500 ops/s... it gets up to mds share 3000
  // ops/s costing 0.3 s/s of disk; writer takes the remaining 0.7.
  EXPECT_LT(writer->rates().progress, 300.0e6 * 0.75);
  EXPECT_GT(writer->rates().progress, 300.0e6 * 0.55);
}

TEST(Storage, DedicatedMdsDecouplesMetadataFromDisk) {
  FsConfig lustre = nfs_config();
  lustre.dedicated_mds = true;
  lustre.metadata_disk_cost_s = 0.0;
  Filesystem fs(lustre);
  auto writer = io_task(IoKind::kWrite);
  auto meta = io_task(IoKind::kMetadata);
  std::vector<Task*> tasks = {writer.get(), meta.get()};
  fs.compute_rates(tasks);
  EXPECT_NEAR(writer->rates().progress, 300.0e6, 1.0);
  EXPECT_NEAR(meta->rates().progress, 3000.0, 1e-6);
}

TEST(Storage, NonIoTasksIgnored) {
  Filesystem fs(nfs_config());
  TaskProfile profile;
  Task compute("c", 0, 0, profile, [](Task&) { return Phase::done(); });
  compute.set_phase(Phase::compute(1e9));
  std::vector<Task*> tasks = {&compute};
  fs.compute_rates(tasks);  // must not touch compute rates
  EXPECT_DOUBLE_EQ(compute.rates().progress, 0.0);
}

TEST(Storage, InvalidConfigRejected) {
  FsConfig bad = nfs_config();
  bad.metadata_ops_per_s = 0.0;
  EXPECT_THROW(Filesystem{bad}, InvariantError);
  bad = nfs_config();
  bad.disk_write_bw = -1.0;
  EXPECT_THROW(Filesystem{bad}, InvariantError);
}

}  // namespace
}  // namespace hpas::sim
