// Tests for the native anomaly generators. Durations are kept short
// (<= ~0.5 s each) so the suite stays fast while still proving each
// generator does real work on the host.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "anomalies/cache_topology.hpp"
#include "anomalies/cachecopy.hpp"
#include "anomalies/cpuoccupy.hpp"
#include "anomalies/iobandwidth.hpp"
#include "anomalies/iometadata.hpp"
#include "anomalies/membw.hpp"
#include "anomalies/memeater.hpp"
#include "anomalies/memleak.hpp"
#include "anomalies/netoccupy.hpp"
#include "common/error.hpp"

namespace hpas::anomalies {
namespace {

namespace fs = std::filesystem;

std::string temp_dir() {
  return fs::temp_directory_path().string();
}

TEST(CacheTopology, ParseLevels) {
  EXPECT_EQ(parse_cache_level("L1"), CacheLevel::kL1);
  EXPECT_EQ(parse_cache_level("l2"), CacheLevel::kL2);
  EXPECT_EQ(parse_cache_level("3"), CacheLevel::kL3);
  EXPECT_THROW(parse_cache_level("L4"), ConfigError);
  EXPECT_THROW(parse_cache_level(""), ConfigError);
}

TEST(CacheTopology, FallbackDefaultsAreSane) {
  const CacheTopology topo = detect_cache_topology("/nonexistent");
  EXPECT_FALSE(topo.detected);
  EXPECT_EQ(topo.l1_bytes, 32u * 1024);
  EXPECT_LT(topo.l1_bytes, topo.l2_bytes);
  EXPECT_LT(topo.l2_bytes, topo.l3_bytes);
}

TEST(CacheTopology, DetectsFromSysfsWhenPresent) {
  const std::string sysfs = "/sys/devices/system/cpu/cpu0/cache";
  if (!fs::is_directory(sysfs)) GTEST_SKIP();
  const CacheTopology topo = detect_cache_topology(sysfs);
  EXPECT_TRUE(topo.detected);
  EXPECT_GT(topo.l1_bytes, 0u);
}

TEST(CpuOccupy, RunsForRequestedDuration) {
  CpuOccupyOptions opts;
  opts.common.duration_s = 0.3;
  opts.utilization_pct = 100.0;
  CpuOccupy anomaly(opts);
  const RunStats stats = anomaly.run();
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.work_amount, 0.0);
  EXPECT_GE(stats.elapsed_seconds, 0.29);
  EXPECT_LT(stats.elapsed_seconds, 2.0);
}

TEST(CpuOccupy, LowUtilizationSleepsMostOfThePeriod) {
  CpuOccupyOptions opts;
  opts.common.duration_s = 0.4;
  opts.utilization_pct = 10.0;
  opts.period_s = 0.05;
  CpuOccupy anomaly(opts);
  const RunStats stats = anomaly.run();
  // Active (busy) time should be well under half the wall time at 10%.
  EXPECT_LT(stats.active_seconds / stats.elapsed_seconds, 0.5);
}

TEST(CpuOccupy, ChecksumChangesWithSeed) {
  auto run_with_seed = [](std::uint64_t seed) {
    CpuOccupyOptions opts;
    opts.common.duration_s = 0.05;
    opts.common.seed = seed;
    CpuOccupy anomaly(opts);
    anomaly.run();
    return anomaly.checksum();
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(CpuOccupy, RejectsBadOptions) {
  CpuOccupyOptions opts;
  opts.utilization_pct = 101.0;
  EXPECT_THROW(CpuOccupy{opts}, InvariantError);
  opts.utilization_pct = 50.0;
  opts.period_s = 0.0;
  EXPECT_THROW(CpuOccupy{opts}, InvariantError);
}

TEST(Anomaly, StartDelayHonored) {
  CpuOccupyOptions opts;
  opts.common.duration_s = 0.1;
  opts.common.start_delay_s = 0.2;
  CpuOccupy anomaly(opts);
  const RunStats stats = anomaly.run();
  EXPECT_GE(stats.elapsed_seconds, 0.28);
}

TEST(Anomaly, StopRequestEndsRunEarly) {
  CpuOccupyOptions opts;
  opts.common.duration_s = 0.0;  // unlimited
  CpuOccupy anomaly(opts);
  std::thread stopper([&anomaly] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    anomaly.request_stop();
  });
  const RunStats stats = anomaly.run();
  stopper.join();
  EXPECT_LT(stats.elapsed_seconds, 5.0);
}

TEST(CacheCopy, ArraySizingFollowsLevelAndMultiplier) {
  CacheCopyOptions opts;
  opts.level = CacheLevel::kL2;
  opts.multiplier = 1.0;
  opts.topology = CacheTopology{};  // defaults: L2 = 256K
  CacheCopy anomaly(opts);
  EXPECT_EQ(anomaly.array_bytes(), 128u * 1024);  // half the level

  opts.multiplier = 2.0;
  CacheCopy doubled(opts);
  EXPECT_EQ(doubled.array_bytes(), 256u * 1024);
}

TEST(CacheCopy, CopiesBytes) {
  CacheCopyOptions opts;
  opts.common.duration_s = 0.2;
  opts.level = CacheLevel::kL1;
  CacheCopy anomaly(opts);
  const RunStats stats = anomaly.run();
  EXPECT_GT(stats.iterations, 100u);  // L1-sized copies are fast
  EXPECT_DOUBLE_EQ(stats.work_amount,
                   static_cast<double>(stats.iterations) *
                       static_cast<double>(anomaly.array_bytes()));
}

TEST(MemBw, TransposesWithNonTemporalStores) {
  MemBwOptions opts;
  opts.common.duration_s = 0.25;
  opts.matrix_bytes = 2 * 1024 * 1024;
  MemBw anomaly(opts);
  const RunStats stats = anomaly.run();
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.work_amount, 0.0);
#if defined(__SSE2__) && defined(__x86_64__)
  EXPECT_TRUE(MemBw::uses_nontemporal_stores());
#endif
}

TEST(MemBw, DimensionFromBytes) {
  MemBwOptions opts;
  opts.matrix_bytes = 8ULL * 1024 * 1024;  // 1M doubles -> 1024x1024
  MemBw anomaly(opts);
  EXPECT_EQ(anomaly.dimension(), 1024u);
}

TEST(MemEater, GrowsByStepsAndReleases) {
  MemEaterOptions opts;
  opts.common.duration_s = 0.35;
  opts.step_bytes = 1024 * 1024;
  opts.sleep_between_steps_s = 0.05;
  MemEater anomaly(opts);
  const RunStats stats = anomaly.run();
  EXPECT_GT(stats.iterations, 2u);
  EXPECT_GT(stats.work_amount, 2.0 * 1024 * 1024);  // grew at least twice
  EXPECT_EQ(anomaly.allocated_bytes(), 0u);         // released on teardown
}

TEST(MemEater, RespectsMaxSize) {
  MemEaterOptions opts;
  opts.common.duration_s = 0.3;
  opts.step_bytes = 1024 * 1024;
  opts.max_bytes = 2 * 1024 * 1024;
  opts.sleep_between_steps_s = 0.02;
  MemEater anomaly(opts);
  const RunStats stats = anomaly.run();
  EXPECT_LE(stats.work_amount, 2.0 * 1024 * 1024 + 1);
}

TEST(MemLeak, FootprintGrowsMonotonically) {
  MemLeakOptions opts;
  opts.common.duration_s = 0.3;
  opts.chunk_bytes = 512 * 1024;
  opts.sleep_between_chunks_s = 0.02;
  MemLeak anomaly(opts);
  const RunStats stats = anomaly.run();
  EXPECT_GT(stats.iterations, 5u);
  // work_amount reports the cumulative leak, which only grows.
  EXPECT_GT(stats.work_amount, 5.0 * 512 * 1024);
}

TEST(MemLeak, CapStopsGrowth) {
  MemLeakOptions opts;
  opts.common.duration_s = 0.25;
  opts.chunk_bytes = 512 * 1024;
  opts.max_bytes = 1024 * 1024;
  opts.sleep_between_chunks_s = 0.01;
  MemLeak anomaly(opts);
  const RunStats stats = anomaly.run();
  EXPECT_LE(stats.work_amount, 1024.0 * 1024 + 1);
}

TEST(NetOccupy, LoopbackMovesBytes) {
  NetOccupyOptions opts;
  opts.common.duration_s = 0.5;
  opts.mode = NetMode::kLoopback;
  opts.port = 18211;
  opts.message_bytes = 256 * 1024;
  NetOccupy anomaly(opts);
  anomaly.run();
  EXPECT_GT(anomaly.bytes_sent(), 1024u * 1024);
  EXPECT_GT(anomaly.bytes_received(), 0u);
}

TEST(NetOccupy, MultipleTaskPairs) {
  NetOccupyOptions opts;
  opts.common.duration_s = 0.4;
  opts.mode = NetMode::kLoopback;
  opts.port = 18261;
  opts.message_bytes = 128 * 1024;
  opts.ntasks = 3;
  NetOccupy anomaly(opts);
  anomaly.run();
  EXPECT_GT(anomaly.bytes_sent(), 3u * 128 * 1024);
}

TEST(NetOccupy, ParseModes) {
  EXPECT_EQ(parse_net_mode("send"), NetMode::kSend);
  EXPECT_EQ(parse_net_mode("recv"), NetMode::kRecv);
  EXPECT_EQ(parse_net_mode("loopback"), NetMode::kLoopback);
  EXPECT_THROW(parse_net_mode("bogus"), ConfigError);
}

TEST(IoMetadata, CreatesAndCleansUp) {
  IoMetadataOptions opts;
  opts.common.duration_s = 0.3;
  opts.directory = temp_dir();
  opts.files_per_iteration = 5;
  IoMetadata anomaly(opts);
  anomaly.run();
  EXPECT_GT(anomaly.metadata_ops(), 10u);
  // The per-task scratch directories must be gone afterwards.
  for (const auto& entry : fs::directory_iterator(temp_dir())) {
    EXPECT_EQ(entry.path().filename().string().rfind("hpas_iometadata_", 0),
              std::string::npos)
        << "leftover: " << entry.path();
  }
}

TEST(IoBandwidth, WritesAndCleansUp) {
  IoBandwidthOptions opts;
  opts.common.duration_s = 0.4;
  opts.directory = temp_dir();
  opts.file_bytes = 4 * 1024 * 1024;
  opts.block_bytes = 256 * 1024;
  IoBandwidth anomaly(opts);
  anomaly.run();
  // At minimum the seed file was fully written; on an unloaded host the
  // copy chain adds more, but CI machines may only just finish the seed.
  EXPECT_GE(anomaly.bytes_written(), 4u * 1024 * 1024);
  for (const auto& entry : fs::directory_iterator(temp_dir())) {
    EXPECT_EQ(entry.path().filename().string().rfind("hpas_iobandwidth_", 0),
              std::string::npos)
        << "leftover: " << entry.path();
  }
}

TEST(IoBandwidth, InvalidDirectoryFails) {
  IoBandwidthOptions opts;
  opts.common.duration_s = 0.1;
  // A path *under a file* cannot be created even by root (ENOTDIR).
  opts.directory = "/dev/null/sub";
  IoBandwidth anomaly(opts);
  EXPECT_THROW(anomaly.run(), SystemError);
}

}  // namespace
}  // namespace hpas::anomalies
