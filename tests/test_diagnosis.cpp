// End-to-end tests for the diagnosis pipeline (ml/diagnosis.hpp) on a
// deliberately small configuration so the suite stays quick.
#include <algorithm>
#include "ml/diagnosis.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpas::ml {
namespace {

DiagnosisDataOptions small_options() {
  DiagnosisDataOptions options;
  options.classes = {"none", "memleak", "cpuoccupy"};
  options.variants_per_app = 1;
  options.run_duration_s = 30.0;
  return options;
}

TEST(DiagnosisData, ShapeAndDeterminism) {
  const auto options = small_options();
  const Dataset a = generate_diagnosis_dataset(options);
  // 3 classes x 8 apps x 1 variant.
  EXPECT_EQ(a.size(), 24u);
  EXPECT_EQ(a.num_classes(), 3);
  EXPECT_GT(a.num_features(), 50u);

  const Dataset b = generate_diagnosis_dataset(options);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.labels[i], b.labels[i]);
    EXPECT_TRUE(std::ranges::equal(a.row(i), b.row(i)));  // bit-identical runs
  }
}

TEST(DiagnosisData, BalancedLabels) {
  const Dataset data = generate_diagnosis_dataset(small_options());
  std::vector<int> counts(3, 0);
  for (const int y : data.labels) ++counts[static_cast<std::size_t>(y)];
  EXPECT_EQ(counts[0], 8);
  EXPECT_EQ(counts[1], 8);
  EXPECT_EQ(counts[2], 8);
}

TEST(DiagnosisData, RequiresNoneFirst) {
  DiagnosisDataOptions bad = small_options();
  bad.classes = {"memleak", "none"};
  EXPECT_THROW(generate_diagnosis_dataset(bad), InvariantError);
}

TEST(DiagnosisEval, DistinctClassesSeparate) {
  // none vs memleak vs cpuoccupy have clearly different signatures
  // (Memfree slope, user CPU); even 2-fold CV on 24 samples should be
  // far above chance (0.33).
  DiagnosisDataOptions options = small_options();
  options.variants_per_app = 2;  // 48 samples
  const Dataset data = generate_diagnosis_dataset(options);
  const auto results = evaluate_classifiers(data, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].classifier, "DecisionTree");
  EXPECT_EQ(results[2].classifier, "RandomForest");
  for (const auto& scores : results) {
    EXPECT_GT(scores.overall_f1, 0.6) << scores.classifier;
    EXPECT_EQ(scores.per_class_f1.size(), 3u);
    EXPECT_EQ(scores.confusion.size(), 3u);
  }
  // RF typically at/near the top.
  EXPECT_GE(results[2].overall_f1, results[0].overall_f1 - 0.1);
}

TEST(DiagnosisEval, EmptyDatasetRejected) {
  Dataset empty;
  EXPECT_THROW(evaluate_classifiers(empty, 3), InvariantError);
}

}  // namespace
}  // namespace hpas::ml
