// Memory-pressure guard: the footprint anomalies must degrade to holding
// their allocation -- never grow into an OOM kill -- when available
// memory drops below the floor.
#include "anomalies/mem_guard.hpp"

#include <gtest/gtest.h>

#include "anomalies/memeater.hpp"
#include "anomalies/memleak.hpp"

namespace {

using hpas::anomalies::available_memory_bytes;
using hpas::anomalies::parse_cgroup_bytes;
using hpas::anomalies::parse_meminfo_available;

TEST(MemGuardParse, MeminfoAvailable) {
  const std::string meminfo =
      "MemTotal:       16384000 kB\n"
      "MemFree:         1024000 kB\n"
      "MemAvailable:    2048000 kB\n"
      "Buffers:          512000 kB\n";
  const auto avail = parse_meminfo_available(meminfo);
  ASSERT_TRUE(avail.has_value());
  EXPECT_EQ(*avail, 2048000ULL * 1024);
}

TEST(MemGuardParse, MeminfoWithoutAvailableLine) {
  EXPECT_FALSE(parse_meminfo_available("MemTotal: 1 kB\n").has_value());
  EXPECT_FALSE(parse_meminfo_available("").has_value());
}

TEST(MemGuardParse, CgroupBytes) {
  EXPECT_EQ(parse_cgroup_bytes("4294967296\n"), 4294967296ULL);
  EXPECT_EQ(parse_cgroup_bytes("0\n"), 0ULL);
  EXPECT_FALSE(parse_cgroup_bytes("max\n").has_value());
  EXPECT_FALSE(parse_cgroup_bytes("garbage").has_value());
}

TEST(MemGuard, AvailableMemoryIsReadableOnLinux) {
  // On any Linux with /proc this returns a sane nonzero value; elsewhere
  // nullopt is the documented answer.
  const auto avail = available_memory_bytes();
  if (avail.has_value()) EXPECT_GT(*avail, 0u);
}

TEST(MemGuard, MemEaterHoldsBelowFloor) {
  if (!available_memory_bytes().has_value())
    GTEST_SKIP() << "no readable memory accounting on this platform";
  // An impossibly high floor engages the guard on the very first
  // iteration: the eater must hold at zero bytes instead of growing.
  hpas::anomalies::MemEaterOptions opts;
  opts.common.duration_s = 0.3;
  opts.step_bytes = 1 << 20;
  opts.sleep_between_steps_s = 0.05;
  opts.mem_floor_bytes = 1ULL << 62;
  hpas::anomalies::MemEater eater(opts);
  const auto stats = eater.run();
  EXPECT_EQ(eater.allocated_bytes(), 0u);
  EXPECT_GT(eater.floor_holds(), 0u);
  EXPECT_GT(stats.iterations, 0u);
}

TEST(MemGuard, MemLeakHoldsBelowFloor) {
  if (!available_memory_bytes().has_value())
    GTEST_SKIP() << "no readable memory accounting on this platform";
  hpas::anomalies::MemLeakOptions opts;
  opts.common.duration_s = 0.3;
  opts.chunk_bytes = 1 << 20;
  opts.sleep_between_chunks_s = 0.05;
  opts.mem_floor_bytes = 1ULL << 62;
  hpas::anomalies::MemLeak leak(opts);
  leak.run();
  EXPECT_EQ(leak.leaked_bytes(), 0u);
  EXPECT_GT(leak.floor_holds(), 0u);
}

TEST(MemGuard, DisabledFloorNeverHolds) {
  hpas::anomalies::MemEaterOptions opts;
  opts.common.duration_s = 0.1;
  opts.step_bytes = 1 << 16;  // 64 KiB steps: tiny, fast
  opts.sleep_between_steps_s = 0.01;
  opts.max_bytes = 1 << 20;
  opts.mem_floor_bytes = 0;
  hpas::anomalies::MemEater eater(opts);
  const auto stats = eater.run();
  EXPECT_EQ(eater.floor_holds(), 0u);
  // teardown() releases the buffer after run(); the grown footprint is
  // visible through the work counter.
  EXPECT_GT(stats.work_amount, 0.0);
}

}  // namespace
