// Epoch-boundary stress for the sharded executor.
//
// The sharded engine's contract is conservative epoch synchronization:
// all parallel domain work forks after an event fires and joins before
// anything order-sensitive runs. These tests hammer exactly those
// boundaries -- task spawn/kill storms, external phase changes, event
// cancellation bursts, profile mutations, all scheduled *at* epoch
// barriers (including FIFO-tied timestamps) -- and assert the two
// properties the design document promises:
//
//   1. trace bytes are invariant under the shard count (1, 2, 4, 8),
//      under run_until splits at arbitrary boundaries, and under
//      changing the shard count mid-run;
//   2. the domain settle order never changes counter *bits*: every node
//      and task counter compares bit-for-bit (not approximately) against
//      the serial run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/world.hpp"
#include "trace/export.hpp"
#include "trace/replay.hpp"
#include "trace/tracer.hpp"

namespace hpas::sim {
namespace {

/// Bit-exact digest of a double sequence: the raw IEEE-754 payloads.
/// Two digests are equal iff every counter matches to the last bit.
void append_bits(std::string& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  out.append(reinterpret_cast<const char*>(&bits), sizeof(bits));
}

std::string counter_digest(World& world) {
  // Settle every deferred-integration cursor first so the digest reads
  // final values, then freeze the bits.
  world.update();
  std::string digest;
  for (int id = 0; id < world.num_nodes(); ++id) {
    const NodeCounters& c = world.node(id).counters();
    for (const double v : {c.cpu_user_seconds, c.cpu_sys_seconds,
                           c.instructions, c.l1_misses, c.l2_misses,
                           c.l3_misses, c.dram_bytes, c.nic_tx_bytes,
                           c.nic_rx_bytes, c.pages_faulted})
      append_bits(digest, v);
  }
  for (const Task* task : world.tasks()) {
    const TaskCounters& c = task->counters();
    for (const double v : {c.cpu_seconds, c.instructions, c.l2_misses,
                           c.l3_misses, c.dram_bytes, c.bytes_sent,
                           c.io_work})
      append_bits(digest, v);
  }
  append_bits(digest, world.filesystem().counters().bytes_written);
  append_bits(digest, world.filesystem().counters().bytes_read);
  return digest;
}

struct StormRun {
  std::string trace;    ///< serialized binary trace bytes
  std::string digest;   ///< bit-exact counter digest
};

/// Byte-compare with a readable failure: on mismatch report the first
/// divergent record, not two binary blobs.
void expect_same_trace(const std::string& got, const std::string& want,
                       const std::string& label) {
  if (got == want) return;
  std::istringstream got_in(got, std::ios::binary);
  std::istringstream want_in(want, std::ios::binary);
  const auto divergence = trace::diff_traces(trace::read_binary(want_in),
                                             trace::read_binary(got_in));
  ADD_FAILURE() << label << ": traces differ: " << divergence.description;
}

/// A 32-node world where every epoch boundary is contested: cycling
/// workloads on all nodes, cross-shard message flows, filesystem
/// traffic, scheduled kill/spawn/wake/mutate storms (several at the
/// same timestamp, exercising FIFO tie-break under sharding) and an
/// event-cancellation burst that leaves tombstones in the queue.
/// `splits` optionally breaks run_until at those times; `reshard_at` and
/// `reshard_to`, when >= 0, switch the shard count mid-run.
StormRun run_storm(int shards, const std::vector<double>& splits = {},
                   double reshard_at = -1.0, int reshard_to = -1) {
  World world(NodeConfig{}, Topology::two_tier(8, 4, 10e9, 18e9),
              FsConfig{.metadata_ops_per_s = 30000.0,
                       .disk_write_bw = 5.0e9,
                       .disk_read_bw = 5.5e9,
                       .dedicated_mds = true,
                       .metadata_disk_cost_s = 0.0});
  world.set_shards(shards);
  trace::TraceCapture capture;
  world.attach_tracer(&capture.tracer());
  world.enable_monitoring(0.5);

  // Cycling residents on every node; message peers straddle the shard
  // partition (node i talks to the diametrically opposite node), so NIC
  // deposits always cross domains.
  std::vector<Task*> cyclers;
  const int n = world.num_nodes();
  for (int id = 0; id < n; ++id) {
    TaskProfile profile;
    profile.stream_bw_demand = 2.0e9;
    const int peer = (id + n / 2) % n;
    Task* task = world.spawn_task(
        "cycler" + std::to_string(id), id, id % 4, profile,
        Phase::compute(1.0e9), [peer](Task& t) {
          switch (t.phase().kind) {
            case PhaseKind::kCompute: return Phase::stream(0.5e9);
            case PhaseKind::kStream: return Phase::message(peer, 0.25e9);
            case PhaseKind::kMessage:
              return Phase::io(IoKind::kWrite, 64.0e6);
            case PhaseKind::kIo: return Phase::sleep(0.25);
            default: return Phase::compute(1.0e9);
          }
        });
    cyclers.push_back(task);
  }
  // Idle tasks woken externally mid-run -- the spawn path of a BSP
  // barrier release, exercised at an epoch barrier.
  std::vector<Task*> sleepers;
  for (int id = 0; id < n; id += 3) {
    sleepers.push_back(world.spawn_task(
        "idler" + std::to_string(id), id, 5, TaskProfile{}, Phase::idle(),
        [](Task&) { return Phase::done(); }));
  }

  Simulator& sim = world.simulator();
  // Kill storm: several kills at the *same* timestamp (FIFO ties), from
  // different shards' node ranges.
  for (int i = 0; i < 8; ++i) {
    Task* victim = cyclers[static_cast<std::size_t>(i * 4 + 1)];
    sim.schedule_at(2.0, [&world, victim] {
      if (!victim->killed() && !victim->done()) world.kill_task(victim);
    });
  }
  // Spawn storm at the same barrier: replacements plus brand-new load.
  for (int i = 0; i < 8; ++i) {
    const int node = i * 4 + 2;
    sim.schedule_at(2.0, [&world, node] {
      world.spawn_task("burst" + std::to_string(node), node, 6,
                       TaskProfile{}, Phase::stream(1.0e9), [](Task& t) {
                         return t.phase().kind == PhaseKind::kStream
                                    ? Phase::compute(0.5e9)
                                    : Phase::done();
                       });
    });
  }
  // Wake storm: external phase changes require an explicit update().
  sim.schedule_at(3.0, [&world, sleepers] {
    for (Task* task : sleepers)
      if (!task->killed() && !task->done())
        task->set_phase(Phase::sleep(0.5));
    world.update();
  });
  // Profile-mutation storm: rate changes land exactly on a barrier.
  sim.schedule_at(4.0, [&world, cyclers] {
    for (std::size_t i = 0; i < cyclers.size(); i += 5) {
      Task* task = cyclers[i];
      if (task->killed() || task->done()) continue;
      task->mutable_profile().cpu_demand = 0.5;
    }
    world.update();
  });
  // Cancellation burst: schedule far-future events, cancel most of them
  // immediately -- tombstones sit in the queue while shards advance.
  sim.schedule_at(5.0, [&sim] {
    std::vector<EventHandle> doomed;
    for (int i = 0; i < 64; ++i)
      doomed.push_back(sim.schedule_at(1.0e6 + i, [] {}));
    for (std::size_t i = 0; i < doomed.size(); ++i)
      if (i % 8 != 0) sim.cancel(doomed[i]);
  });
  double t = 0.0;
  // The reshard happens from *outside* the event loop, at a run_until
  // boundary -- scheduling it as a simulator event would add a traced
  // event and trivially (legitimately) change the stream.
  if (reshard_at >= 0.0 && reshard_to >= 1) {
    world.run_until(reshard_at);
    world.set_shards(reshard_to);
    t = reshard_at;
  }
  for (const double split : splits) {
    world.run_until(split);
    t = split;
  }
  if (t < 8.0) world.run_until(8.0);

  StormRun run;
  run.digest = counter_digest(world);
  std::ostringstream out(std::ios::binary);
  trace::write_binary(out, capture.take());
  run.trace = out.str();
  return run;
}

TEST(ShardEpoch, StormTraceAndCounterBitsAreShardCountInvariant) {
  const StormRun serial = run_storm(1);
  ASSERT_FALSE(serial.trace.empty());
  for (const int shards : {2, 4, 8}) {
    const StormRun sharded = run_storm(shards);
    expect_same_trace(sharded.trace, serial.trace,
                      "shards=" + std::to_string(shards));
    EXPECT_EQ(sharded.digest, serial.digest)
        << "counter bits changed at shards=" << shards;
  }
}

TEST(ShardEpoch, RunUntilSplitsNeverChangeBytes) {
  // run_until boundaries force a full settle (sync_all_domains); cutting
  // the same simulation at arbitrary points must not move a single bit,
  // serial or sharded.
  const StormRun whole = run_storm(1);
  const std::vector<std::vector<double>> split_sets = {
      {2.0, 3.0, 4.0, 5.0},            // exactly on the storm barriers
      {1.9999, 2.0001, 4.99, 7.5},     // straddling them
      {0.5, 1.0, 1.5, 2.5, 6.125},     // unrelated boundaries
  };
  for (const auto& splits : split_sets) {
    for (const int shards : {1, 4}) {
      const StormRun cut = run_storm(shards, splits);
      expect_same_trace(cut.trace, whole.trace,
                        "shards=" + std::to_string(shards) + " splits[0]=" +
                            std::to_string(splits[0]));
      EXPECT_EQ(cut.digest, whole.digest)
          << "shards=" << shards << " splits[0]=" << splits[0];
    }
  }
}

TEST(ShardEpoch, ReshardingMidRunIsInvisible) {
  // set_shards mid-run settles every domain first, so the switch lands
  // between epochs and cannot be observed in the output.
  const StormRun serial = run_storm(1);
  for (const auto& [from, to] : std::vector<std::pair<int, int>>{
           {1, 8}, {8, 1}, {2, 4}}) {
    const StormRun reshard = run_storm(from, {}, 3.5, to);
    expect_same_trace(reshard.trace, serial.trace,
                      "reshard " + std::to_string(from) + " -> " +
                          std::to_string(to));
    EXPECT_EQ(reshard.digest, serial.digest)
        << "reshard " << from << " -> " << to;
  }
}

TEST(ShardEpoch, ShardCountsBeyondNodesClampAndStayExact) {
  // Asking for more shards than nodes clamps to num_nodes; the clamp is
  // an execution detail and must not leak into the bytes.
  const StormRun serial = run_storm(1);
  const StormRun oversub = run_storm(1000);
  expect_same_trace(oversub.trace, serial.trace, "oversubscribed");
  EXPECT_EQ(oversub.digest, serial.digest);
}

}  // namespace
}  // namespace hpas::sim
