// Sweep output writing: every file lands atomically (temp + rename), so
// a failure mid-write never leaves a partially written or stray .tmp
// file behind -- the bug this pins down was `hpas sweep` leaving partial
// CSVs when cancel-on-first-failure interrupted a run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "runner/grid.hpp"
#include "runner/runner.hpp"

namespace fs = std::filesystem;

namespace {

hpas::runner::SweepGrid tiny_grid(bool with_failure = false) {
  hpas::runner::SweepGrid grid;
  grid.name = "outputs_grid";
  for (int i = 0; i < 2; ++i) {
    hpas::runner::ScenarioSpec spec;
    spec.name = "scenario" + std::to_string(i);
    spec.anomaly = i == 0 ? "memleak" : "none";
    spec.duration_s = 3.0;
    spec.sample_period_s = 1.0;
    spec.seed = hpas::runner::derive_scenario_seed(7, static_cast<std::uint64_t>(i));
    grid.scenarios.push_back(spec);
  }
  if (with_failure) {
    // app_nodes beyond the preset's node count makes run_scenario throw.
    grid.scenarios[1].app = "CoMD";
    grid.scenarios[1].app_nodes = 1000;
  }
  return grid;
}

std::set<std::string> list_dir(const fs::path& dir) {
  std::set<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir))
    names.insert(entry.path().filename().string());
  return names;
}

class SweepOutputsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("hpas_sweep_outputs_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(SweepOutputsTest, WritesAllFilesAndLeavesNoTemporaries) {
  const auto result = hpas::runner::run_sweep(tiny_grid(), {.threads = 2});
  ASSERT_TRUE(result.ok()) << result.first_error();
  hpas::runner::write_outputs(result, dir_.string());

  const auto names = list_dir(dir_);
  EXPECT_TRUE(names.count("scenario0.csv"));
  EXPECT_TRUE(names.count("scenario1.csv"));
  EXPECT_TRUE(names.count("summary.json"));
  for (const std::string& name : names)
    EXPECT_TRUE(name.find(".tmp") == std::string::npos)
        << "stray temporary left behind: " << name;
}

TEST_F(SweepOutputsTest, CapturedTracesLandNextToTheCsvs) {
  const auto result = hpas::runner::run_sweep(
      tiny_grid(), {.threads = 1, .capture_traces = true});
  ASSERT_TRUE(result.ok()) << result.first_error();
  hpas::runner::write_outputs(result, dir_.string());
  const auto names = list_dir(dir_);
  EXPECT_TRUE(names.count("scenario0.trace.bin"));
  EXPECT_TRUE(names.count("scenario1.trace.bin"));
  EXPECT_GT(fs::file_size(dir_ / "scenario0.trace.bin"), 0u);
}

TEST_F(SweepOutputsTest, FailedScenariosProduceNoPartialFiles) {
  // Scenario 1 throws inside run_scenario and cancel-on-first-failure may
  // skip scenario 0 entirely; write_outputs must emit files only for
  // scenarios that completed, never a partial or temporary one.
  const auto result =
      hpas::runner::run_sweep(tiny_grid(/*with_failure=*/true), {.threads = 1});
  ASSERT_FALSE(result.ok());
  hpas::runner::write_outputs(result, dir_.string());
  const auto names = list_dir(dir_);
  EXPECT_FALSE(names.count("scenario1.csv"));
  EXPECT_TRUE(names.count("summary.json"));
  for (const auto& s : result.scenarios) {
    const bool completed = s.ran && s.error.empty();
    EXPECT_EQ(names.count(s.spec.name + ".csv") == 1, completed)
        << s.spec.name;
  }
  for (const std::string& name : names)
    EXPECT_TRUE(name.find(".tmp") == std::string::npos)
        << "stray temporary left behind: " << name;
}

TEST_F(SweepOutputsTest, InjectorKeysAreOptionalInSummaryRows) {
  // Schema round-trip: summary rows carry injector_fail_at_s /
  // injector_fail_tasks ONLY for degraded-injector scenarios, so clean
  // sweeps stay byte-identical to summaries recorded before the fields
  // existed. Search frontier replay relies on exactly this row shape.
  auto grid = tiny_grid();
  grid.scenarios[0].app = "CoMD";
  grid.scenarios[0].anomaly = "cpuoccupy";
  grid.scenarios[0].injector_fail_at_s = 1.5;
  grid.scenarios[0].injector_fail_tasks = 2;
  const auto result = hpas::runner::run_sweep(grid, {.threads = 1});
  ASSERT_TRUE(result.ok()) << result.first_error();

  const hpas::Json summary =
      hpas::Json::parse(result.summary_json().dump(2));
  const hpas::Json* rows = summary.find("scenarios");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->as_array().size(), 2u);

  const hpas::Json& degraded = rows->as_array()[0];
  ASSERT_NE(degraded.find("injector_fail_at_s"), nullptr);
  ASSERT_NE(degraded.find("injector_fail_tasks"), nullptr);
  EXPECT_DOUBLE_EQ(degraded.find("injector_fail_at_s")->as_number(), 1.5);
  EXPECT_DOUBLE_EQ(degraded.find("injector_fail_tasks")->as_number(), 2.0);

  const hpas::Json& clean = rows->as_array()[1];
  EXPECT_EQ(clean.find("injector_fail_at_s"), nullptr)
      << "clean scenarios must not grow injector keys";
  EXPECT_EQ(clean.find("injector_fail_tasks"), nullptr);
}

TEST_F(SweepOutputsTest, ObstructedTargetThrowsAndRemovesTemporary) {
  const auto result = hpas::runner::run_sweep(tiny_grid(), {.threads = 1});
  ASSERT_TRUE(result.ok()) << result.first_error();

  // A directory squatting on summary.json's path makes the final rename
  // fail; the write must surface SystemError and clean up its temporary
  // rather than leaving summary.json.tmp (or a half-written target).
  fs::create_directories(dir_ / "summary.json" / "squatter");
  EXPECT_THROW(hpas::runner::write_outputs(result, dir_.string()),
               hpas::SystemError);
  EXPECT_FALSE(fs::exists(dir_ / "summary.json.tmp"))
      << "temporary not cleaned up after a failed rename";
  // The CSVs written before the failure are complete files, not stubs.
  EXPECT_TRUE(fs::exists(dir_ / "scenario0.csv"));
  EXPECT_GT(fs::file_size(dir_ / "scenario0.csv"), 0u);
}

}  // namespace
