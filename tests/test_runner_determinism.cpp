// Reproducibility regression tests for the experiment runner.
//
// The runner's contract: a sweep's outputs (per-scenario CSVs + JSON
// summary) are byte-identical at any thread count, including 1, and
// stable across releases for a fixed grid. The cross-thread checks run
// the same grid at 1 / 2 / 5 workers; the golden-file check pins the
// exact bytes under tests/golden/ (regenerate with
// HPAS_UPDATE_GOLDEN=1 after an intentional model change).
#include "runner/diagnosis_sweep.hpp"
#include "runner/grid.hpp"
#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace hpas::runner {
namespace {

Json small_grid_spec() {
  Json spec = Json::object();
  spec.set("name", "determinism_grid");
  spec.set("system", "voltrino");
  spec.set("seed", 1234.0);
  spec.set("duration_s", 30.0);
  spec.set("sample_period_s", 1.0);
  Json apps = Json::array();
  for (const char* a : {"CoMD", "milc"}) apps.push_back(a);
  spec.set("apps", std::move(apps));
  Json anomalies = Json::array();
  for (const char* a : {"none", "cpuoccupy", "membw", "memleak"})
    anomalies.push_back(a);
  spec.set("anomalies", std::move(anomalies));
  Json intensities = Json::array();
  intensities.push_back(0.5);
  intensities.push_back(1.0);
  spec.set("intensities", std::move(intensities));
  spec.set("repeats", 1.0);
  return spec;
}

std::string concat_outputs(const SweepResult& result) {
  std::ostringstream out;
  out << result.summary_json().dump(2) << '\n';
  for (const auto& s : result.scenarios)
    out << "== " << s.spec.name << " ==\n" << s.metrics_csv;
  return out.str();
}

TEST(GridExpansion, IsDeterministic) {
  const auto a = expand_grid(small_grid_spec());
  const auto b = expand_grid(small_grid_spec());
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  ASSERT_EQ(a.scenarios.size(), 16u);  // 2 apps x 4 anomalies x 2 x 1
  for (std::size_t i = 0; i < a.scenarios.size(); ++i) {
    EXPECT_EQ(a.scenarios[i].name, b.scenarios[i].name);
    EXPECT_EQ(a.scenarios[i].seed, b.scenarios[i].seed);
  }
}

TEST(GridExpansion, SeedsAreCounterBasedNotSequential) {
  // Scenario i's seed depends only on (base_seed, i): dropping scenarios
  // in front of it must not change it.
  EXPECT_EQ(derive_scenario_seed(42, 7), derive_scenario_seed(42, 7));
  EXPECT_NE(derive_scenario_seed(42, 7), derive_scenario_seed(42, 8));
  EXPECT_NE(derive_scenario_seed(42, 7), derive_scenario_seed(43, 7));
}

TEST(SweepDeterminism, ByteIdenticalAcrossThreadCounts) {
  const auto grid = expand_grid(small_grid_spec());
  const auto serial = run_sweep(grid, {.threads = 1});
  ASSERT_TRUE(serial.ok()) << serial.first_error();
  const std::string reference = concat_outputs(serial);
  for (const int threads : {2, 5}) {
    const auto parallel =
        run_sweep(grid, {.threads = threads, .queue_capacity = 4});
    ASSERT_TRUE(parallel.ok()) << parallel.first_error();
    EXPECT_EQ(concat_outputs(parallel), reference)
        << "sweep diverged at " << threads << " threads";
  }
}

TEST(SweepDeterminism, RepeatedRunsAgree) {
  const auto grid = expand_grid(small_grid_spec());
  const auto first = run_sweep(grid, {.threads = 3});
  const auto second = run_sweep(grid, {.threads = 3});
  EXPECT_EQ(concat_outputs(first), concat_outputs(second));
}

// Golden pin: the full output bytes of a fixed small grid. Catches both
// accidental nondeterminism and silent model drift. HPAS_UPDATE_GOLDEN=1
// rewrites the file (then inspect the diff and commit deliberately).
TEST(SweepDeterminism, MatchesGoldenFile) {
  const std::string path =
      std::string(HPAS_GOLDEN_DIR) + "/sweep_determinism_grid.txt";
  const auto result = run_sweep(expand_grid(small_grid_spec()), {.threads = 2});
  ASSERT_TRUE(result.ok()) << result.first_error();
  const std::string actual = concat_outputs(result);

  if (std::getenv("HPAS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden file updated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing golden file " << path
      << " (regenerate with HPAS_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "sweep output drifted from tests/golden/sweep_determinism_grid.txt;"
         " if the model change is intentional, regenerate with"
         " HPAS_UPDATE_GOLDEN=1 and commit the diff";
}

TEST(SweepDeterminism, SummaryCarriesSeedsAndStats) {
  const auto result = run_sweep(expand_grid(small_grid_spec()), {.threads = 2});
  const Json summary = result.summary_json();
  EXPECT_EQ(summary.find("grid")->as_string(), "determinism_grid");
  EXPECT_EQ(summary.number_or("scenario_count", 0.0), 16.0);
  const auto& rows = summary.find("scenarios")->as_array();
  ASSERT_EQ(rows.size(), 16u);
  // 64-bit seeds are serialized as strings (doubles can't hold them).
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].find("seed")->as_string(),
              std::to_string(result.scenarios[i].spec.seed));
  }
  const auto& groups = summary.find("by_anomaly")->as_array();
  ASSERT_EQ(groups.size(), 4u);  // first-appearance order
  EXPECT_EQ(groups[0].find("anomaly")->as_string(), "none");
  for (const auto& g : groups) {
    EXPECT_GT(g.number_or("median_s", 0.0), 0.0);
    EXPECT_GE(g.number_or("p95_s", 0.0), g.number_or("median_s", 0.0));
  }
}

TEST(DiagnosisSweep, ParallelMatchesSerialGenerator) {
  // Small but non-trivial: 6 classes x 8 apps x 1 variant = 48 runs.
  ml::DiagnosisDataOptions options;
  options.variants_per_app = 1;
  options.run_duration_s = 20.0;
  options.warmup_s = 2.0;

  const auto serial = ml::generate_diagnosis_dataset(options);
  const auto parallel = generate_diagnosis_dataset_parallel(options, 4);
  EXPECT_EQ(serial.labels, parallel.labels);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial.values(), parallel.values()) << "feature rows diverged";
  EXPECT_EQ(serial.class_names, parallel.class_names);
  EXPECT_EQ(serial.feature_names, parallel.feature_names);
}

}  // namespace
}  // namespace hpas::runner
