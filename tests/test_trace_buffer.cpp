// Trace ring buffer, tracer, and serialization unit tests: wrap-around
// order, explicit overflow accounting (drops are counted, never silent),
// zero-allocation disabled mode, sink losslessness, and byte-stable
// binary round-trips including rejection of malformed input.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "trace/buffer.hpp"
#include "trace/export.hpp"
#include "trace/record.hpp"
#include "trace/tracer.hpp"

namespace {

using hpas::trace::RecordKind;
using hpas::trace::TraceBuffer;
using hpas::trace::TraceFile;
using hpas::trace::TraceRecord;
using hpas::trace::Tracer;

TraceRecord make_record(std::uint64_t seq, double time = 0.0) {
  TraceRecord r;
  r.seq = seq;
  r.time = time;
  r.kind = RecordKind::kEventFired;
  r.a = seq * 7;
  return r;
}

TEST(TraceBuffer, StartsEmptyWithNoCapacity) {
  TraceBuffer buf;
  EXPECT_EQ(buf.capacity(), 0u);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.full());
}

TEST(TraceBuffer, CapacityZeroCountsEveryPushAsDropped) {
  TraceBuffer buf;
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_FALSE(buf.push(make_record(i)));
  EXPECT_EQ(buf.total_pushed(), 5u);
  EXPECT_EQ(buf.dropped(), 5u);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(TraceBuffer, FillsInOrderWithoutDrops) {
  TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(buf.push(make_record(i)));
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.dropped(), 0u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(buf[i].seq, i);
}

TEST(TraceBuffer, WrapAroundKeepsNewestAndCountsDrops) {
  TraceBuffer buf(3);
  for (std::uint64_t i = 0; i < 10; ++i) buf.push(make_record(i));
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.total_pushed(), 10u);
  EXPECT_EQ(buf.dropped(), 7u);
  // Oldest-first window over the newest records: 7, 8, 9.
  EXPECT_EQ(buf[0].seq, 7u);
  EXPECT_EQ(buf[1].seq, 8u);
  EXPECT_EQ(buf[2].seq, 9u);
}

TEST(TraceBuffer, PushReportsOverwriteExactlyWhenFull) {
  TraceBuffer buf(2);
  EXPECT_TRUE(buf.push(make_record(0)));
  EXPECT_TRUE(buf.push(make_record(1)));
  EXPECT_FALSE(buf.push(make_record(2)));  // overwrote seq 0
  EXPECT_EQ(buf.dropped(), 1u);
}

TEST(TraceBuffer, ClearKeepsCapacityAndCumulativeCounters) {
  TraceBuffer buf(2);
  buf.push(make_record(0));
  buf.push(make_record(1));
  buf.push(make_record(2));
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 2u);
  EXPECT_EQ(buf.total_pushed(), 3u);
  EXPECT_EQ(buf.dropped(), 1u);  // the overwrite stays on the books
  EXPECT_TRUE(buf.push(make_record(3)));
  EXPECT_EQ(buf[0].seq, 3u);
}

TEST(TraceBuffer, ResetReallocatesButKeepsCounters) {
  TraceBuffer buf(2);
  buf.push(make_record(0));
  buf.push(make_record(1));
  buf.push(make_record(2));
  buf.reset(8);
  EXPECT_EQ(buf.capacity(), 8u);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 1u);
  EXPECT_EQ(buf.total_pushed(), 3u);
}

TEST(TraceBuffer, SnapshotIsOldestFirst) {
  TraceBuffer buf(3);
  for (std::uint64_t i = 0; i < 5; ++i) buf.push(make_record(i));
  const std::vector<TraceRecord> snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].seq, 2u);
  EXPECT_EQ(snap[2].seq, 4u);
}

TEST(TraceBuffer, IndexOutOfRangeThrows) {
  TraceBuffer buf(2);
  buf.push(make_record(0));
  EXPECT_THROW((void)buf[1], hpas::InvariantError);
}

TEST(Tracer, DisabledByDefaultOwnsNoStorageAndEmitIsNoOp) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.buffer().capacity(), 0u);  // no ring allocation
  tracer.emit(RecordKind::kEventFired, 0, 0, 1);
  // Disabled emit must not even touch the ring counters, let alone
  // allocate: the buffer stays pristine.
  EXPECT_EQ(tracer.emitted(), 0u);
  EXPECT_EQ(tracer.buffer().total_pushed(), 0u);
  EXPECT_EQ(tracer.buffer().capacity(), 0u);
}

TEST(Tracer, DisableStopsRecordingButKeepsRecords) {
  Tracer tracer(/*capacity=*/8);
  tracer.emit(RecordKind::kEventFired, 0, 0, 1);
  tracer.disable();
  tracer.emit(RecordKind::kEventFired, 0, 0, 2);
  EXPECT_EQ(tracer.emitted(), 1u);
  EXPECT_EQ(tracer.buffer().size(), 1u);
}

TEST(Tracer, OverflowWithoutSinkDropsOldestAndCounts) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i)
    tracer.emit(RecordKind::kEventFired, 0, 0, static_cast<std::uint64_t>(i));
  EXPECT_EQ(tracer.emitted(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.buffer().size(), 4u);
  EXPECT_EQ(tracer.buffer()[0].seq, 6u);  // ring holds the newest window
}

TEST(Tracer, SinkMakesCaptureLossless) {
  Tracer tracer(/*capacity=*/4);
  std::vector<TraceRecord> out;
  tracer.set_sink([&out](const TraceRecord* records, std::size_t n) {
    out.insert(out.end(), records, records + n);
  });
  for (int i = 0; i < 1000; ++i)
    tracer.emit(RecordKind::kEventFired, 0, 0, static_cast<std::uint64_t>(i));
  tracer.flush();
  EXPECT_EQ(tracer.dropped(), 0u);
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].seq, i);
}

TEST(Tracer, FirstLabelWinsAndLabelsSortById) {
  Tracer tracer(/*capacity=*/4);
  tracer.set_label(7, "late");
  tracer.set_label(2, "early");
  tracer.set_label(7, "ignored");
  const auto labels = tracer.sorted_labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].first, 2u);
  EXPECT_EQ(labels[0].second, "early");
  EXPECT_EQ(labels[1].first, 7u);
  EXPECT_EQ(labels[1].second, "late");
}

TraceFile sample_file() {
  TraceFile file;
  file.emitted = 3;
  file.dropped = 0;
  file.labels = {{1, "memleak"}, {2, "rank0"}};
  for (std::uint64_t i = 0; i < 3; ++i) {
    TraceRecord r = make_record(i, 0.5 * static_cast<double>(i));
    r.x = -0.0;  // sign of zero must survive the round trip
    r.y = 1.0 / 3.0;
    file.records.push_back(r);
  }
  return file;
}

TEST(TraceExport, BinaryRoundTripIsExact) {
  const TraceFile file = sample_file();
  std::ostringstream out(std::ios::binary);
  hpas::trace::write_binary(out, file);
  std::istringstream in(out.str(), std::ios::binary);
  const TraceFile back = hpas::trace::read_binary(in);
  EXPECT_EQ(back.emitted, file.emitted);
  EXPECT_EQ(back.dropped, file.dropped);
  EXPECT_EQ(back.labels, file.labels);
  ASSERT_EQ(back.records.size(), file.records.size());
  for (std::size_t i = 0; i < back.records.size(); ++i)
    EXPECT_TRUE(hpas::trace::bitwise_equal(back.records[i], file.records[i]));

  // Re-serializing the parsed trace reproduces the input byte for byte.
  std::ostringstream again(std::ios::binary);
  hpas::trace::write_binary(again, back);
  EXPECT_EQ(again.str(), out.str());
}

TEST(TraceExport, RejectsBadMagicAndTruncation) {
  const TraceFile file = sample_file();
  std::ostringstream out(std::ios::binary);
  hpas::trace::write_binary(out, file);
  const std::string bytes = out.str();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  std::istringstream in1(bad_magic, std::ios::binary);
  EXPECT_THROW(hpas::trace::read_binary(in1), hpas::ConfigError);

  std::istringstream in2(bytes.substr(0, bytes.size() - 5), std::ios::binary);
  EXPECT_THROW(hpas::trace::read_binary(in2), hpas::ConfigError);

  std::istringstream in3(std::string("short"), std::ios::binary);
  EXPECT_THROW(hpas::trace::read_binary(in3), hpas::ConfigError);
}

TEST(TraceExport, TextFormIsStableAndLabelsSubjects) {
  TraceFile file = sample_file();
  file.records[1].subject = 1;  // labeled as "memleak"
  std::ostringstream out;
  hpas::trace::write_text(out, file);
  const std::string text = out.str();
  EXPECT_NE(text.find("trace emitted=3 dropped=0 records=3"),
            std::string::npos);
  EXPECT_NE(text.find("label 1 memleak"), std::string::npos);
  EXPECT_NE(text.find("subj=1(memleak)"), std::string::npos);

  std::ostringstream out2;
  hpas::trace::write_text(out2, file);
  EXPECT_EQ(out2.str(), text);  // byte-stable
}

TEST(TraceExport, ChromeTraceHasOneEventPerRecord) {
  const TraceFile file = sample_file();
  const hpas::Json doc = hpas::trace::to_chrome_trace(file);
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->as_array().size(), file.records.size());
}

}  // namespace
