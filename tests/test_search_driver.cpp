// Guided-search driver battery: the frontier and the evaluation journal
// must be byte-identical at any pool thread count; a journal truncated
// mid-frame (the SIGKILL shape) plus --resume must converge to the exact
// bytes of an uninterrupted run; every frontier entry must replay to the
// same summary row; annealing must beat the random baseline on the fig08
// subspace under a pinned seed; and the minimizer must respect its keep
// threshold. Plus unit tests of the objective scoring rules and a golden
// frontier pin.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "runner/runner.hpp"
#include "search/driver.hpp"
#include "search/objective.hpp"
#include "search/space.hpp"

namespace {

using hpas::Json;
using hpas::search::DegradationPerIntensityObjective;
using hpas::search::EvadeDiagnosisObjective;
using hpas::search::FrontierEntry;
using hpas::search::Measurement;
using hpas::search::run_search;
using hpas::search::ScenarioSpace;
using hpas::search::SchedulerWorstCaseObjective;
using hpas::search::SearchOptions;
using hpas::search::SearchResult;
using hpas::search::summary_row_json;

// A cheap space for the byte-level tests: short windows, one app, three
// anomalies -- each evaluation is a few milliseconds of simulation.
const char* kQuickSpaceText = R"({
  "name": "quick_search",
  "system": "voltrino",
  "seed": 7,
  "app": "CoMD",
  "duration_s": 10,
  "sample_period_s": 1.0,
  "run_to_completion": false,
  "dimensions": [
    {"name": "anomaly", "type": "categorical",
     "values": ["cpuoccupy", "cachecopy", "membw"]},
    {"name": "intensity", "type": "continuous", "lo": 0.25, "hi": 2.0}
  ]
})";

// The fig08 subspace from examples/spaces/fig08_search.json: the
// anneal-vs-random acceptance test and the golden frontier run here.
const char* kFig08SpaceText = R"({
  "name": "fig08_search",
  "system": "voltrino",
  "seed": 42,
  "app": "CoMD",
  "duration_s": 20,
  "sample_period_s": 1.0,
  "run_to_completion": false,
  "dimensions": [
    {"name": "app", "type": "categorical", "values": ["CoMD", "milc"]},
    {"name": "anomaly", "type": "categorical",
     "values": ["cpuoccupy", "cachecopy", "membw"]},
    {"name": "intensity", "type": "continuous", "lo": 0.25, "hi": 2.0},
    {"name": "ranks_per_node", "type": "integer", "lo": 1, "hi": 4}
  ]
})";

ScenarioSpace quick_space() {
  return ScenarioSpace::from_json(Json::parse(kQuickSpaceText));
}

ScenarioSpace fig08_space() {
  return ScenarioSpace::from_json(Json::parse(kFig08SpaceText));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

class SearchDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("hpas-search-driver-" + std::string(::testing::UnitTest::
                                                     GetInstance()
                                                         ->current_test_info()
                                                         ->name()));
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string out(const std::string& leaf) const {
    return (base_ / leaf).string();
  }

  std::filesystem::path base_;
};

SearchOptions quick_options() {
  SearchOptions options;
  options.strategy = "anneal";
  options.budget = 12;
  options.batch = 4;
  options.frontier_size = 4;
  options.threads = 1;
  return options;
}

// The frontier document with a fixed replay path: the only
// path-dependent field pinned, everything else must be bit-stable.
std::string frontier_text(const SearchResult& result,
                          const ScenarioSpace& space) {
  return result.frontier_json(space, "frontier.json").dump(2);
}

TEST_F(SearchDriverTest, ThreadCountDoesNotChangeBytes) {
  const ScenarioSpace space = quick_space();
  std::string reference_frontier;
  std::string reference_journal;
  for (const int threads : {1, 2, 5}) {
    SearchOptions options = quick_options();
    options.threads = threads;
    options.journal_path =
        out("t" + std::to_string(threads)) + "/search.journal";
    std::filesystem::create_directories(out("t" + std::to_string(threads)));
    const SearchResult result = run_search(space, options);
    EXPECT_GT(result.executed, 0u);
    const std::string frontier = frontier_text(result, space);
    const std::string journal = read_file(options.journal_path);
    if (threads == 1) {
      reference_frontier = frontier;
      reference_journal = journal;
      ASSERT_FALSE(result.frontier.empty());
    } else {
      EXPECT_EQ(frontier, reference_frontier)
          << "frontier JSON depends on thread count (threads=" << threads
          << ")";
      EXPECT_EQ(journal, reference_journal)
          << "evaluation journal depends on thread count (threads="
          << threads << ")";
    }
  }
}

TEST_F(SearchDriverTest, StrategiesAreSeedDeterministic) {
  const ScenarioSpace space = quick_space();
  for (const char* strategy : {"random", "anneal", "bandit"}) {
    SearchOptions options = quick_options();
    options.strategy = strategy;
    const std::string a = frontier_text(run_search(space, options), space);
    const std::string b = frontier_text(run_search(space, options), space);
    EXPECT_EQ(a, b) << "strategy '" << strategy
                    << "' is not reproducible under a fixed seed";
  }
}

TEST_F(SearchDriverTest, ResumeAfterTruncationIsByteIdentical) {
  const ScenarioSpace space = quick_space();

  // Reference: one uninterrupted journaled run.
  SearchOptions full = quick_options();
  full.threads = 2;
  full.journal_path = out("full") + "/search.journal";
  std::filesystem::create_directories(out("full"));
  const SearchResult uninterrupted = run_search(space, full);
  const std::string want_frontier = frontier_text(uninterrupted, space);
  const std::string want_journal = read_file(full.journal_path);

  // "Crash": truncate a copy of the journal to ~50% -- with high
  // probability mid-frame, exactly the torn tail a SIGKILL leaves.
  std::filesystem::create_directories(out("killed"));
  const std::string killed_journal = out("killed") + "/search.journal";
  {
    const std::string bytes = want_journal;
    std::ofstream cut(killed_journal, std::ios::binary | std::ios::trunc);
    cut.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }

  // Resume against the torn journal: cached evaluations must be reused,
  // the missing suffix re-run, and both artifacts must converge to the
  // uninterrupted bytes.
  SearchOptions resume = full;
  resume.journal_path = killed_journal;
  resume.resume = true;
  const SearchResult resumed = run_search(space, resume);
  EXPECT_GT(resumed.cached, 0u) << "resume did not reuse the journal";
  EXPECT_LT(resumed.executed, uninterrupted.executed)
      << "resume re-ran everything";
  EXPECT_EQ(frontier_text(resumed, space), want_frontier);
  EXPECT_EQ(read_file(killed_journal), want_journal);

  // Resuming a *complete* journal runs nothing at all.
  const SearchResult warm = run_search(space, resume);
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_GT(warm.cached, 0u);
  EXPECT_EQ(frontier_text(warm, space), want_frontier);
  EXPECT_EQ(read_file(killed_journal), want_journal);
}

TEST_F(SearchDriverTest, FrontierEntriesReplayByteForByte) {
  const ScenarioSpace space = quick_space();
  SearchOptions options = quick_options();
  options.threads = 2;
  const SearchResult result = run_search(space, options);
  ASSERT_FALSE(result.frontier.empty());
  for (const FrontierEntry& entry : result.frontier) {
    const auto rerun = hpas::runner::run_scenario(entry.spec);
    ASSERT_EQ(rerun.status, hpas::runner::ScenarioStatus::kDone);
    const std::string recorded =
        summary_row_json(entry.spec, entry.app_elapsed_s,
                         entry.app_iterations)
            .dump(2);
    const std::string replayed =
        summary_row_json(entry.spec, rerun.app_elapsed_s,
                         static_cast<std::uint64_t>(rerun.app_iterations))
            .dump(2);
    EXPECT_EQ(replayed, recorded)
        << "scenario " << entry.spec.name << " did not replay exactly";
  }
}

TEST_F(SearchDriverTest, AnnealingBeatsRandomOnFig08Subspace) {
  ScenarioSpace space = fig08_space();
  space.set_base_seed(1);  // pinned: the comparison below is deterministic
  SearchOptions anneal;
  anneal.strategy = "anneal";
  anneal.budget = 64;
  anneal.batch = 8;
  anneal.frontier_size = 4;
  anneal.threads = 2;
  SearchOptions random = anneal;
  random.strategy = "random";

  const SearchResult guided = run_search(space, anneal);
  const SearchResult baseline = run_search(space, random);
  ASSERT_FALSE(guided.frontier.empty());
  ASSERT_FALSE(baseline.frontier.empty());
  // Deterministic under the pinned space seed (42): the guided strategy
  // must find an optimum at least as degrading as uniform sampling's.
  EXPECT_GE(guided.frontier.front().objective,
            baseline.frontier.front().objective);
  EXPECT_GT(guided.frontier.front().objective, 0.0);
}

TEST_F(SearchDriverTest, MinimizerRespectsKeepThreshold) {
  const ScenarioSpace space = quick_space();
  SearchOptions options = quick_options();
  options.budget = 16;
  options.minimize = true;
  options.minimize_keep = 0.9;
  const SearchResult result = run_search(space, options);
  ASSERT_FALSE(result.frontier.empty());
  ASSERT_GT(result.frontier.front().objective, 0.0);
  ASSERT_TRUE(result.has_minimized);
  EXPECT_GE(result.minimized.objective,
            options.minimize_keep * result.frontier.front().objective);
  // The minimizer only ever shrinks numeric coordinates.
  const auto& best = result.frontier.front().point.coords;
  const auto& min = result.minimized.point.coords;
  ASSERT_EQ(best.size(), min.size());
  EXPECT_EQ(min[0], best[0]);  // categorical anomaly untouched
  EXPECT_LE(min[1], best[1]);  // intensity only moves down
}

// --- objective scoring units -------------------------------------------

hpas::runner::ScenarioSpec spec_with(const std::string& anomaly,
                                     double intensity) {
  hpas::runner::ScenarioSpec spec;
  spec.name = "unit";
  spec.anomaly = anomaly;
  spec.intensity = intensity;
  return spec;
}

TEST_F(SearchDriverTest, DegradationScoresThroughputRatio) {
  const DegradationPerIntensityObjective objective;
  const Measurement run{10.0, 500};
  const Measurement baseline{10.0, 1000};
  // Throughput halved at intensity 1 -> slowdown 1.0.
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("cpuoccupy", 1.0), run, baseline, 0.0), 1.0);
  // Same slowdown at double the intensity scores half.
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("cpuoccupy", 2.0), run, baseline, 0.0), 0.5);
  // Anomaly-free points ARE baselines: exactly 0.
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("none", 1.0), run, baseline, 0.0), 0.0);
  // Missing baseline: 0, never a spurious reward.
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("cpuoccupy", 1.0), run, Measurement{}, 0.0),
      0.0);
}

TEST_F(SearchDriverTest, EvadeScoreIsInverseTrueClassConfidence) {
  // A tiny deterministic forest: 2 features, classes {none, cpuoccupy}.
  hpas::ml::Dataset data;
  data.class_names = {"none", "cpuoccupy"};
  for (int i = 0; i < 8; ++i) {
    data.add({0.0 + 0.01 * i, 1.0}, 0);
    data.add({1.0 + 0.01 * i, 0.0}, 1);
  }
  hpas::ml::ForestOptions forest_options;
  forest_options.num_trees = 5;
  auto forest = std::make_shared<hpas::ml::RandomForest>(forest_options);
  forest->fit(data);

  const EvadeDiagnosisObjective objective(forest, data.class_names);
  const Measurement none{};
  // score = 1 - P(true class): confident classifier -> nothing gained.
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("cpuoccupy", 1.0), none, none, 0.25), 0.75);
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("cpuoccupy", 1.0), none, none, 1.0), 0.0);
  // Nothing to evade without an anomaly, or for an untrained class.
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("none", 1.0), none, none, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("memleak", 1.0), none, none, 0.1), 0.0);
}

TEST_F(SearchDriverTest, WbasScoreIsProbeGatedOnAnomaly) {
  const SchedulerWorstCaseObjective objective;
  const Measurement none{};
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("cpuoccupy", 1.0), none, none, 0.8), 0.8);
  EXPECT_DOUBLE_EQ(
      objective.score(spec_with("none", 1.0), none, none, 0.8), 0.0);
}

TEST_F(SearchDriverTest, InjectedObjectiveDrivesTheSearch) {
  // An objective injected through the options (the test seam the evade /
  // wbas CLI paths use): reward high intensity directly.
  class IntensityObjective final : public hpas::search::Objective {
   public:
    const char* name() const override { return "intensity"; }
    double score(const hpas::runner::ScenarioSpec& spec, const Measurement&,
                 const Measurement&, double) const override {
      return spec.intensity;
    }
  };
  const ScenarioSpace space = quick_space();
  SearchOptions options = quick_options();
  options.budget = 24;
  options.objective_impl = std::make_shared<IntensityObjective>();
  const SearchResult result = run_search(space, options);
  ASSERT_FALSE(result.frontier.empty());
  EXPECT_EQ(result.objective, "intensity");
  // Annealing on a monotone objective must get close to the upper bound.
  EXPECT_GT(result.frontier.front().objective, 1.5);
  EXPECT_DOUBLE_EQ(result.frontier.front().objective,
                   result.frontier.front().spec.intensity);
}

// --- golden frontier ----------------------------------------------------

// Byte-level pin of a small annealing run on the fig08 subspace. Refresh
// intentionally with: HPAS_UPDATE_GOLDEN=1 ./test_search_driver
TEST_F(SearchDriverTest, GoldenFrontierFig08) {
  const ScenarioSpace space = fig08_space();
  SearchOptions options;
  options.strategy = "anneal";
  options.budget = 32;
  options.batch = 8;
  options.frontier_size = 4;
  options.threads = 2;
  const SearchResult result = run_search(space, options);
  const std::string actual = frontier_text(result, space);

  const std::string golden_path =
      std::string(HPAS_GOLDEN_DIR) + "/search_frontier_fig08.json";
  if (std::getenv("HPAS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream file(golden_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(file.is_open()) << "cannot write " << golden_path;
    file << actual;
    GTEST_SKIP() << "golden frontier updated: " << golden_path;
  }
  std::ifstream file(golden_path, std::ios::binary);
  ASSERT_TRUE(file.is_open())
      << "missing golden file " << golden_path
      << " (generate with HPAS_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << file.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "search frontier drifted from the golden pin; if the change is "
         "intentional, refresh with HPAS_UPDATE_GOLDEN=1";
}

}  // namespace
