// Sweep-journal robustness: the resume contract depends on the journal
// reader returning exactly the durable prefix of a possibly-torn file --
// a crash mid-append must cost one record, never the journal.
#include "runner/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "runner/grid.hpp"

namespace {

using hpas::runner::JournalReadResult;
using hpas::runner::JournalRecord;
using hpas::runner::JournalStatus;
using hpas::runner::JournalWriter;
using hpas::runner::read_journal;
using hpas::runner::scenario_key_hash;
using hpas::runner::ScenarioSpec;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hpas-journal-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "sweep.journal").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string read_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void write_bytes(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  std::filesystem::path dir_;
  std::string path_;
};

JournalRecord sample_record(int i) {
  JournalRecord rec;
  rec.key_hash = 0x1234'5678'9abc'def0ULL + static_cast<std::uint64_t>(i);
  rec.status = static_cast<JournalStatus>(1 + i % 4);
  rec.name = "scenario-" + std::to_string(i);
  rec.output = rec.name + ".csv";
  rec.csv_crc = 0xdeadbeef ^ static_cast<std::uint32_t>(i);
  rec.trace_crc = static_cast<std::uint32_t>(i * 17);
  rec.trace_records = static_cast<std::uint64_t>(i) * 1000;
  rec.app_iterations = static_cast<std::uint64_t>(i) * 7;
  rec.app_elapsed_s = 1.5 * i;
  rec.wall_seconds = 0.25 * i;
  rec.error = i % 4 == 2 ? "boom: " + std::to_string(i) : "";
  return rec;
}

void expect_equal(const JournalRecord& a, const JournalRecord& b) {
  EXPECT_EQ(a.key_hash, b.key_hash);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.csv_crc, b.csv_crc);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.app_iterations, b.app_iterations);
  EXPECT_DOUBLE_EQ(a.app_elapsed_s, b.app_elapsed_s);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.has_objective, b.has_objective);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST_F(JournalTest, RoundTripsAllFields) {
  {
    JournalWriter writer(path_, /*truncate=*/true);
    for (int i = 0; i < 5; ++i) writer.append(sample_record(i));
  }
  const JournalReadResult read = read_journal(path_);
  EXPECT_TRUE(read.damage.empty()) << read.damage;
  EXPECT_EQ(read.dropped_frames, 0u);
  ASSERT_EQ(read.records.size(), 5u);
  for (int i = 0; i < 5; ++i) expect_equal(read.records[i], sample_record(i));
}

TEST_F(JournalTest, MissingFileReadsEmpty) {
  const JournalReadResult read = read_journal(path_);
  EXPECT_TRUE(read.records.empty());
  EXPECT_TRUE(read.damage.empty());
}

TEST_F(JournalTest, EmptyJournalIsJustAHeader) {
  { JournalWriter writer(path_, /*truncate=*/true); }
  const JournalReadResult read = read_journal(path_);
  EXPECT_TRUE(read.records.empty());
  EXPECT_TRUE(read.damage.empty());
  EXPECT_EQ(read.dropped_frames, 0u);
}

TEST_F(JournalTest, AppendModeContinuesExistingJournal) {
  {
    JournalWriter writer(path_, /*truncate=*/true);
    writer.append(sample_record(0));
  }
  {
    JournalWriter writer(path_, /*truncate=*/false);
    writer.append(sample_record(1));
  }
  const JournalReadResult read = read_journal(path_);
  ASSERT_EQ(read.records.size(), 2u);
  expect_equal(read.records[1], sample_record(1));
}

TEST_F(JournalTest, TruncatedTailDropsOnlyTheLastRecord) {
  {
    JournalWriter writer(path_, /*truncate=*/true);
    for (int i = 0; i < 3; ++i) writer.append(sample_record(i));
  }
  const std::string bytes = read_bytes();
  // Chop mid-way into the last frame, as a crash during write() would.
  write_bytes(bytes.substr(0, bytes.size() - 7));

  const JournalReadResult read = read_journal(path_);
  EXPECT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.dropped_frames, 1u);
  EXPECT_FALSE(read.damage.empty());
  for (int i = 0; i < 2; ++i) expect_equal(read.records[i], sample_record(i));
}

TEST_F(JournalTest, FlippedByteFailsTheCrc) {
  {
    JournalWriter writer(path_, /*truncate=*/true);
    for (int i = 0; i < 3; ++i) writer.append(sample_record(i));
  }
  std::string bytes = read_bytes();
  // Flip one payload byte in the *last* frame (well after the first two).
  bytes[bytes.size() - 12] = static_cast<char>(bytes[bytes.size() - 12] ^ 0x40);
  write_bytes(bytes);

  const JournalReadResult read = read_journal(path_);
  EXPECT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.dropped_frames, 1u);
  EXPECT_NE(read.damage.find("CRC"), std::string::npos) << read.damage;
}

TEST_F(JournalTest, GarbageHeaderIsReportedNotThrown) {
  write_bytes("not a journal at all");
  const JournalReadResult read = read_journal(path_);
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(read.damage.empty());
}

TEST_F(JournalTest, ImplausibleFrameLengthStopsReading) {
  {
    JournalWriter writer(path_, /*truncate=*/true);
    writer.append(sample_record(0));
  }
  std::string bytes = read_bytes();
  // Append a frame claiming a gigantic length.
  bytes += std::string("\xff\xff\xff\x7f", 4);
  write_bytes(bytes);
  const JournalReadResult read = read_journal(path_);
  EXPECT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.dropped_frames, 1u);
}

TEST_F(JournalTest, ObjectiveExtensionRoundTrips) {
  // `hpas search` stores the final objective in an optional trailing
  // extension of the record; sweep records never set it, so their frames
  // keep the exact legacy byte layout.
  JournalRecord with = sample_record(0);
  with.has_objective = true;
  with.objective = -3.75;
  JournalRecord without = sample_record(1);
  {
    JournalWriter writer(path_, /*truncate=*/true);
    writer.append(with);
    writer.append(without);
  }
  const JournalReadResult read = read_journal(path_);
  EXPECT_TRUE(read.damage.empty()) << read.damage;
  ASSERT_EQ(read.records.size(), 2u);
  expect_equal(read.records[0], with);
  EXPECT_TRUE(read.records[0].has_objective);
  EXPECT_DOUBLE_EQ(read.records[0].objective, -3.75);
  expect_equal(read.records[1], without);
  EXPECT_FALSE(read.records[1].has_objective);
  EXPECT_DOUBLE_EQ(read.records[1].objective, 0.0);
}

TEST_F(JournalTest, ObjectiveExtensionDoesNotChangeLegacyBytes) {
  // A record without the extension must encode to the same bytes as
  // before the field existed: byte-stability of sweep journals is part of
  // the crash-resume contract.
  {
    JournalWriter writer(path_, /*truncate=*/true);
    writer.append(sample_record(0));
  }
  const std::string legacy = read_bytes();
  {
    JournalRecord rec = sample_record(0);
    rec.has_objective = false;
    rec.objective = 123.0;  // must be ignored when the flag is off
    JournalWriter writer(path_, /*truncate=*/true);
    writer.append(rec);
  }
  EXPECT_EQ(read_bytes(), legacy);
}

TEST_F(JournalTest, CorruptObjectiveExtensionRejectsTheFrame) {
  // The extension rides inside the CRC-guarded frame: a flipped bit in
  // the objective bytes (the frame's tail, just before the CRC trailer)
  // must drop the frame, never yield a silently wrong objective.
  JournalRecord rec = sample_record(0);
  rec.has_objective = true;
  rec.objective = 2.5;
  {
    JournalWriter writer(path_, /*truncate=*/true);
    writer.append(rec);
  }
  std::string bytes = read_bytes();
  bytes[bytes.size() - 6] = static_cast<char>(bytes[bytes.size() - 6] ^ 0x01);
  write_bytes(bytes);
  const JournalReadResult read = read_journal(path_);
  EXPECT_TRUE(read.records.empty());
  EXPECT_EQ(read.dropped_frames, 1u);
}

TEST(ScenarioKeyHash, StableAndSensitiveToEveryField) {
  ScenarioSpec base;
  base.name = "a";
  base.seed = 42;
  EXPECT_EQ(scenario_key_hash(base), scenario_key_hash(base));

  auto differs = [&](auto mutate) {
    ScenarioSpec other = base;
    mutate(other);
    return scenario_key_hash(other) != scenario_key_hash(base);
  };
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.name = "b"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.system = "chameleon"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.app = "CoMD"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.anomaly = "membw"; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.intensity = 2.0; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.duration_s = 61.0; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.sample_period_s = 0.5; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.app_nodes = 3; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.ranks_per_node = 5; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.run_to_completion = true; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.injector_fail_at_s = 1.0; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.injector_fail_tasks = 2; }));
  EXPECT_TRUE(differs([](ScenarioSpec& s) { s.seed = 43; }));
}

}  // namespace
