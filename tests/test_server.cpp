// The experiment server battery: content-addressed cache hits do zero
// engine work, concurrent duplicate submissions coalesce onto one run,
// admission control answers `busy` instead of buffering, drain refuses
// new work, and a SIGKILLed daemon restarted on the same data directory
// serves its journaled results byte-identically.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "runner/grid.hpp"
#include "runner/journal.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace {

using hpas::Json;
using hpas::runner::read_journal;
using hpas::runner::ScenarioSpec;
using hpas::server::Client;
using hpas::server::Server;
using hpas::server::ServerOptions;

ScenarioSpec quick_spec(const std::string& name, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.system = "voltrino";
  spec.app = "none";
  spec.anomaly = "none";
  spec.duration_s = 5.0;
  spec.sample_period_s = 1.0;
  spec.seed = seed;
  return spec;
}

Json submit_request(std::uint64_t id, const ScenarioSpec& spec) {
  Json request = Json::object();
  request.set("op", "submit");
  request.set("id", Json(id));
  request.set("spec", hpas::runner::spec_to_json(spec));
  return request;
}

/// Raw frame-level connection: the byte-identity assertions compare
/// unparsed payloads, so serialization differences cannot hide.
class RawConn {
 public:
  explicit RawConn(const std::string& path)
      : fd_(hpas::server::connect_unix(path)) {}
  ~RawConn() { ::close(fd_); }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  void send(const Json& request) { hpas::server::write_json(fd_, request); }

  int fd() const { return fd_; }

  std::string recv_payload() {
    std::string payload;
    if (!hpas::server::read_frame(fd_, payload))
      throw std::runtime_error("server closed unexpectedly");
    return payload;
  }

 private:
  int fd_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("hpas-server-" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  ServerOptions options() const {
    ServerOptions opts;
    opts.data_dir = (base_ / "data").string();
    opts.socket_path = (base_ / "hpas.sock").string();
    opts.threads = 2;
    return opts;
  }

  std::filesystem::path base_;
};

TEST_F(ServerTest, RepeatSubmissionIsByteIdenticalCacheHitWithNoRerun) {
  Server server(options());
  server.start();
  const ScenarioSpec spec = quick_spec("repeat", 42);

  RawConn conn(options().socket_path);
  conn.send(submit_request(7, spec));
  const std::string first_ack = conn.recv_payload();
  const std::string first_result = conn.recv_payload();
  EXPECT_NE(first_ack.find("\"cached\":false"), std::string::npos)
      << first_ack;
  EXPECT_NE(first_result.find("\"status\":\"done\""), std::string::npos)
      << first_result;

  // Same spec, same id: the ack flips to cached, the result frame must
  // be the exact same bytes, and the engine must not run again.
  conn.send(submit_request(7, spec));
  const std::string second_ack = conn.recv_payload();
  const std::string second_result = conn.recv_payload();
  EXPECT_NE(second_ack.find("\"cached\":true"), std::string::npos)
      << second_ack;
  EXPECT_EQ(first_result, second_result);

  const auto stats = server.stats();
  EXPECT_EQ(stats.submissions, 2u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);

  server.stop();
  // The journal -- the daemon's evaluation ledger -- has exactly one
  // record: the cache hit did zero engine work.
  EXPECT_EQ(read_journal(options().data_dir + "/server.journal")
                .records.size(),
            1u);
}

TEST_F(ServerTest, ConcurrentClientsWithDuplicatesRunEachScenarioOnce) {
  Server server(options());
  server.start();

  // 4 clients x the same 3 scenarios, racing: coalescing and the cache
  // must reduce 12 submissions to exactly 3 engine runs.
  const std::vector<ScenarioSpec> specs = {
      quick_spec("a", 1), quick_spec("b", 2), quick_spec("c", 3)};
  std::vector<std::thread> clients;
  std::vector<int> failures(4, 0);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Client client = Client::connect(options().socket_path);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(c) * 100 + i + 1;
        client.submit(id, specs[i]);
        const Json result = client.wait_result(id);
        if (result.string_or("type", "") != "result" ||
            result.string_or("status", "") != "done")
          ++failures[static_cast<std::size_t>(c)];
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int f : failures) EXPECT_EQ(f, 0);

  const auto stats = server.stats();
  EXPECT_EQ(stats.submissions, 12u);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 9u);

  server.stop();
  EXPECT_EQ(read_journal(options().data_dir + "/server.journal")
                .records.size(),
            3u);
}

TEST_F(ServerTest, TinyAdmissionQueueAnswersBusyNotBuffering) {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;

  ServerOptions opts = options();
  opts.threads = 1;
  opts.admission_capacity = 1;
  opts.before_run = [&](const ScenarioSpec&) {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  Server server(opts);
  server.start();

  Client client = Client::connect(opts.socket_path);
  const ScenarioSpec held = quick_spec("held", 1);
  client.submit(1, held);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  // The one admission slot is occupied: a distinct scenario bounces
  // with an explicit busy frame...
  client.submit(2, quick_spec("bounced", 2));
  Json busy = client.wait_result(2);
  EXPECT_EQ(busy.string_or("type", ""), "busy");

  // ...but a duplicate of the held scenario coalesces (no slot needed).
  // Wait for its ack -- sent only after the waiter is attached -- before
  // releasing the held run, so the duplicate cannot race into a cache
  // hit instead.
  Client other = Client::connect(opts.socket_path);
  other.submit(3, held);
  Json dup_ack;
  ASSERT_TRUE(other.recv(dup_ack));
  EXPECT_EQ(dup_ack.string_or("type", ""), "accepted");
  EXPECT_FALSE(dup_ack.bool_or("cached", true));

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  EXPECT_EQ(client.wait_result(1).string_or("status", ""), "done");
  EXPECT_EQ(other.wait_result(3).string_or("status", ""), "done");

  // With the slot free the bounced scenario is admitted normally.
  client.submit(4, quick_spec("bounced", 2));
  EXPECT_EQ(client.wait_result(4).string_or("status", ""), "done");

  const auto stats = server.stats();
  EXPECT_EQ(stats.busy_rejected, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.executed, 2u);
  server.stop();
}

TEST_F(ServerTest, DrainServesCacheButRefusesNewWork) {
  Server server(options());
  server.start();

  Client client = Client::connect(options().socket_path);
  const ScenarioSpec spec = quick_spec("cached", 5);
  client.submit(1, spec);
  ASSERT_EQ(client.wait_result(1).string_or("status", ""), "done");

  server.request_drain();
  // Cached results stay available during the drain window...
  client.submit(2, spec);
  EXPECT_EQ(client.wait_result(2).string_or("status", ""), "done");
  // ...but anything needing the engine is refused, not queued.
  client.submit(3, quick_spec("fresh", 6));
  EXPECT_EQ(client.wait_result(3).string_or("type", ""), "draining");

  server.wait();
  EXPECT_FALSE(std::filesystem::exists(options().socket_path));
}

TEST_F(ServerTest, MalformedRequestsGetErrorFramesNotDisconnects) {
  Server server(options());
  server.start();
  RawConn conn(options().socket_path);

  // Unparsable payload: an error frame, and the connection survives.
  hpas::server::write_frame(conn.fd(), "this is not json");
  EXPECT_NE(conn.recv_payload().find("\"type\":\"error\""),
            std::string::npos);

  // Unknown op: error frame naming it.
  Json bad_op = Json::object();
  bad_op.set("op", "frobnicate");
  bad_op.set("id", 9);
  conn.send(bad_op);
  const std::string unknown = conn.recv_payload();
  EXPECT_NE(unknown.find("unknown op"), std::string::npos) << unknown;

  // Submit without a spec: error frame carrying the submission's id.
  Json no_spec = Json::object();
  no_spec.set("op", "submit");
  no_spec.set("id", 4);
  conn.send(no_spec);
  const std::string missing = conn.recv_payload();
  EXPECT_NE(missing.find("\"id\":4"), std::string::npos) << missing;
  EXPECT_NE(missing.find("missing \\\"spec\\\""), std::string::npos)
      << missing;

  // The connection still works for real traffic afterwards.
  Json ping = Json::object();
  ping.set("op", "ping");
  ping.set("id", 5);
  conn.send(ping);
  EXPECT_NE(conn.recv_payload().find("\"type\":\"pong\""),
            std::string::npos);
  server.stop();
}

TEST_F(ServerTest, KilledDaemonRestartsAndServesJournaledResultsByteIdentically) {
  const ServerOptions opts = options();
  const std::vector<ScenarioSpec> specs = {quick_spec("k0", 10),
                                           quick_spec("k1", 11)};

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Daemon process: serve until SIGKILL. Nothing here may return to
    // the test harness.
    try {
      Server daemon(opts);
      daemon.start();
      while (true) std::this_thread::sleep_for(std::chrono::seconds(3600));
    } catch (...) {
      _exit(17);
    }
  }

  // Wait for the daemon's socket, then run the pre-kill campaign,
  // recording the exact result payload bytes.
  std::vector<std::string> pre_kill;
  {
    std::unique_ptr<RawConn> conn;
    for (int i = 0; i < 500 && !conn; ++i) {
      try {
        conn = std::make_unique<RawConn>(opts.socket_path);
      } catch (const std::exception&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    ASSERT_NE(conn, nullptr) << "daemon never came up";
    for (std::size_t i = 0; i < specs.size(); ++i) {
      conn->send(submit_request(i + 1, specs[i]));
      (void)conn->recv_payload();  // accepted
      pre_kill.push_back(conn->recv_payload());
      EXPECT_NE(pre_kill.back().find("\"status\":\"done\""),
                std::string::npos)
          << pre_kill.back();
    }
  }

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Restart on the same data directory: the cache is rebuilt from the
  // journal and the same submissions are served byte-identically with
  // zero engine work.
  Server restarted(opts);
  restarted.start();
  EXPECT_EQ(restarted.stats().restored, specs.size());
  {
    RawConn conn(opts.socket_path);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      conn.send(submit_request(i + 1, specs[i]));
      const std::string ack = conn.recv_payload();
      EXPECT_NE(ack.find("\"cached\":true"), std::string::npos) << ack;
      EXPECT_EQ(conn.recv_payload(), pre_kill[i]);
    }
  }
  const auto stats = restarted.stats();
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(stats.cache_hits, specs.size());
  restarted.stop();
}

}  // namespace
