// Property suites over the resource models: monotonicity and
// conservation invariants that must hold for ANY contention scenario,
// not just the calibrated figures.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/node.hpp"
#include "simanom/injectors.hpp"

namespace hpas::sim {
namespace {

std::unique_ptr<Task> compute_task(int node, int core, double ws_bytes,
                                   double cpu_demand = 1.0) {
  TaskProfile profile;
  profile.cpu_demand = cpu_demand;
  profile.working_set_bytes = ws_bytes;
  profile.m1_base = 20; profile.m1_max = 50;
  profile.m2_base = 10; profile.m2_max = 25;
  profile.m3_base = 4;  profile.m3_max = 15;
  auto task = std::make_unique<Task>("t", node, core, profile,
                                     [](Task&) { return Phase::done(); });
  task->set_phase(Phase::compute(1e15));
  return task;
}

/// Adding a neighbor anywhere on the node must never make a victim
/// faster (work-conserving, interference-only model).
class NeighborMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(NeighborMonotonicity, NeighborNeverSpeedsUpVictim) {
  const auto [neighbor_core, neighbor_ws] = GetParam();
  Node node(0, NodeConfig{});

  auto solo = compute_task(0, 0, 8e6);
  node.compute_rates({solo.get()});
  const double solo_rate = solo->rates().progress;

  auto victim = compute_task(0, 0, 8e6);
  auto neighbor = compute_task(0, neighbor_core, neighbor_ws);
  node.compute_rates({victim.get(), neighbor.get()});
  EXPECT_LE(victim->rates().progress, solo_rate * (1.0 + 1e-9));
  EXPECT_GT(victim->rates().progress, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Neighbors, NeighborMonotonicity,
    ::testing::Combine(::testing::Values(0, 1, 7),
                       ::testing::Values(4.0e3, 256.0e3, 8.0e6, 40.0e6)));

/// Growing the shared working set (cachecopy's multiplier knob) must
/// monotonically increase the victim's L3 MPKI.
class CachePressureMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CachePressureMonotonicity, MpkiNonDecreasingInWorkingSet) {
  Node node(0, NodeConfig{});
  double previous_mpki = 0.0;
  for (double ws = 1e6; ws <= 64e6; ws *= 2) {
    auto victim = compute_task(0, 0, 20e6);
    auto hog = compute_task(0, 1 + GetParam(), ws);
    node.compute_rates({victim.get(), hog.get()});
    const double mpki = victim->rates().l3_miss_rate /
                        victim->rates().instr_rate * 1000.0;
    EXPECT_GE(mpki, previous_mpki - 1e-9) << "ws=" << ws;
    previous_mpki = mpki;
  }
}

INSTANTIATE_TEST_SUITE_P(HogCores, CachePressureMonotonicity,
                         ::testing::Values(0, 3));

/// CPU shares on any core are conserved: they never exceed 1.
class CpuShareConservation : public ::testing::TestWithParam<int> {};

TEST_P(CpuShareConservation, SharesPerCoreBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  Node node(0, NodeConfig{});
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<Task*> raw;
  const std::size_t n = 2 + rng.next_below(12);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back(compute_task(0, static_cast<int>(rng.next_below(4)),
                                 rng.uniform(1e4, 4e7),
                                 rng.uniform(0.1, 1.0)));
    raw.push_back(tasks.back().get());
  }
  node.compute_rates(raw);
  std::vector<double> share_per_core(4, 0.0);
  for (const Task* task : raw)
    share_per_core[static_cast<std::size_t>(task->core())] +=
        task->rates().cpu_share;
  for (const double share : share_per_core) EXPECT_LE(share, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, CpuShareConservation,
                         ::testing::Range(0, 10));

/// DRAM allocations never exceed the node peak, whatever the mix.
class BandwidthConservation : public ::testing::TestWithParam<int> {};

TEST_P(BandwidthConservation, TotalDramBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  NodeConfig config;
  Node node(0, config);
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<Task*> raw;
  const std::size_t n = 1 + rng.next_below(16);
  for (std::size_t i = 0; i < n; ++i) {
    const int core = static_cast<int>(rng.next_below(32));
    if (rng.uniform01() < 0.4) {
      TaskProfile profile;
      profile.stream_bw_demand = rng.uniform(1e9, 20e9);
      profile.working_set_bytes = 64e3;
      auto task = std::make_unique<Task>(
          "s", 0, core, profile, [](Task&) { return Phase::done(); });
      task->set_phase(Phase::stream(1e15));
      tasks.push_back(std::move(task));
    } else {
      tasks.push_back(compute_task(0, core, rng.uniform(1e5, 6e7)));
    }
    raw.push_back(tasks.back().get());
  }
  node.compute_rates(raw);
  double dram_total = 0.0;
  for (const Task* task : raw) dram_total += task->rates().dram_rate;
  EXPECT_LE(dram_total, config.mem_bw_peak * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, BandwidthConservation,
                         ::testing::Range(0, 10));

/// Full-world determinism under a composite anomaly storm.
TEST(WorldProperty, CompositeStormIsDeterministic) {
  auto run_once = [] {
    auto world = make_voltrino_world();
    world->enable_monitoring(1.0);
    simanom::inject_cpuoccupy(*world, 0, 0, 70.0, 80.0);
    simanom::inject_cachecopy(*world, 0, 1, simanom::SimCacheLevel::kL2,
                              1.0, 60.0);
    simanom::inject_membw(*world, 0, 2, 40.0);
    simanom::inject_memleak(*world, 1, 0, 50e6, 1.0, 70.0);
    simanom::inject_netoccupy(*world, 2, 6, 2, 50e6, 50.0);
    simanom::inject_iometadata(*world, 3, 2, 30.0);
    world->run_until(100.0);
    return world->node(0).counters().instructions +
           world->node(0).counters().dram_bytes +
           world->filesystem().counters().metadata_ops;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hpas::sim
