// Tests for the load-balancing runtime (paper Sec. 5.3).
#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "lb/balancers.hpp"
#include "lb/stencil.hpp"

namespace hpas::lb {
namespace {

TEST(SpreadCpuOccupy, FullAndFractionalCores) {
  const auto spread = spread_cpuoccupy(250.0, 4);
  ASSERT_EQ(spread.size(), 4u);
  EXPECT_DOUBLE_EQ(spread[0], 1.0);
  EXPECT_DOUBLE_EQ(spread[1], 1.0);
  EXPECT_DOUBLE_EQ(spread[2], 0.5);
  EXPECT_DOUBLE_EQ(spread[3], 0.0);
}

TEST(SpreadCpuOccupy, ZeroAndFullRange) {
  for (const double d : spread_cpuoccupy(0.0, 8)) EXPECT_DOUBLE_EQ(d, 0.0);
  for (const double d : spread_cpuoccupy(800.0, 8)) EXPECT_DOUBLE_EQ(d, 1.0);
  EXPECT_THROW(spread_cpuoccupy(801.0, 8), hpas::InvariantError);
  EXPECT_THROW(spread_cpuoccupy(-1.0, 8), hpas::InvariantError);
}

TEST(Capacities, ProportionalShareFormula) {
  const auto caps = capacities_from_background({0.0, 1.0, 0.5});
  EXPECT_DOUBLE_EQ(caps[0], 1.0);
  EXPECT_DOUBLE_EQ(caps[1], 0.5);
  EXPECT_DOUBLE_EQ(caps[2], 1.0 / 1.5);
}

TEST(LbObjOnly, DealsEqualCounts) {
  const LbObjOnly balancer;
  const ObjectLoads objects(12, 1.0);
  const CoreCapacities caps(4, 1.0);
  const auto assignment = balancer.assign(objects, caps);
  std::vector<int> counts(4, 0);
  for (const int core : assignment) ++counts[static_cast<std::size_t>(core)];
  for (const int c : counts) EXPECT_EQ(c, 3);
}

TEST(GreedyRefine, MovesWorkOffSlowCores) {
  const GreedyRefineLb balancer;
  const ObjectLoads objects(8, 1.0);
  CoreCapacities caps = {1.0, 1.0, 1.0, 0.25};  // one crippled core
  const auto assignment = balancer.assign(objects, caps);
  std::vector<double> load(4, 0.0);
  for (std::size_t i = 0; i < objects.size(); ++i)
    load[static_cast<std::size_t>(assignment[i])] += objects[i];
  // The crippled core gets less work than the healthy ones.
  EXPECT_LT(load[3], load[0]);
}

TEST(IterationTime, MaxOverCores) {
  const ObjectLoads objects = {1.0, 1.0, 2.0};
  const CoreCapacities caps = {1.0, 0.5};
  const std::vector<int> assignment = {0, 0, 1};
  // core 0: 2.0/1.0 = 2.0; core 1: 2.0/0.5 = 4.0.
  EXPECT_DOUBLE_EQ(iteration_time(assignment, objects, caps), 4.0);
}

TEST(IterationTime, ZeroCapacityWithWorkIsInfinite) {
  const ObjectLoads objects = {1.0};
  const CoreCapacities caps = {0.0};
  EXPECT_EQ(iteration_time({0}, objects, caps),
            std::numeric_limits<double>::infinity());
}

TEST(IterationTime, ValidatesSizes) {
  EXPECT_THROW(iteration_time({0, 1}, {1.0}, {1.0, 1.0}),
               hpas::InvariantError);
  EXPECT_THROW(iteration_time({5}, {1.0}, {1.0}), hpas::InvariantError);
}

TEST(Stencil, BalancersTieWithoutAnomaly) {
  const StencilExperiment experiment;
  const LbObjOnly obj_only;
  const GreedyRefineLb greedy;
  const double t_obj = experiment.time_per_iteration(obj_only, 0.0);
  const double t_greedy = experiment.time_per_iteration(greedy, 0.0);
  EXPECT_NEAR(t_obj, t_greedy, 0.15 * t_obj);
}

TEST(Stencil, GreedyWinsUnderModerateAnomaly) {
  const StencilExperiment experiment;
  const LbObjOnly obj_only;
  const GreedyRefineLb greedy;
  const double t_obj = experiment.time_per_iteration(obj_only, 400.0);
  const double t_greedy = experiment.time_per_iteration(greedy, 400.0);
  EXPECT_LT(t_greedy, 0.8 * t_obj);
}

/// Property: greedy with exact measurements is never worse than the
/// object-count balancer (list scheduling dominates blind dealing).
class StencilDominance : public ::testing::TestWithParam<int> {};

TEST_P(StencilDominance, GreedyNeverLosesByMuch) {
  StencilConfig config;
  config.measurement_noise = 0.0;  // exact capacity probes
  const StencilExperiment experiment(config);
  const LbObjOnly obj_only;
  const GreedyRefineLb greedy;
  const double intensity = GetParam() * 100.0;
  const double t_obj = experiment.time_per_iteration(obj_only, intensity);
  const double t_greedy = experiment.time_per_iteration(greedy, intensity);
  EXPECT_LE(t_greedy, t_obj * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Intensities, StencilDominance,
                         ::testing::Values(0, 2, 4, 8, 12, 16, 20, 24, 28,
                                           32));

TEST(Stencil, MonotoneDegradationForGreedy) {
  const StencilExperiment experiment;
  const GreedyRefineLb greedy;
  double prev = 0.0;
  for (int pct = 0; pct <= 3200; pct += 800) {
    const double t = experiment.time_per_iteration(greedy, pct);
    EXPECT_GE(t, prev * 0.98);  // allow probe-noise wiggle
    prev = t;
  }
}

}  // namespace
}  // namespace hpas::lb
