// Tests for the dragonfly-lite topology.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "sim/network.hpp"

namespace hpas::sim {
namespace {

// 2 groups x 2 routers x 2 nodes = 8 nodes, 4 routers.
Topology small_dragonfly() {
  return Topology::dragonfly(2, 2, 2, 10e9, 20e9, 15e9);
}

std::unique_ptr<Task> message_task(int src, int dst) {
  TaskProfile profile;
  auto task = std::make_unique<Task>("msg", src, 0, profile,
                                     [](Task&) { return Phase::done(); });
  task->set_phase(Phase::message(dst, 1e9));
  return task;
}

TEST(Dragonfly, Shape) {
  const Topology topo = small_dragonfly();
  EXPECT_EQ(topo.num_nodes, 8);
  EXPECT_EQ(topo.num_switches, 4);
  // 8 NIC + 2 local (1 per group) + 1 global.
  EXPECT_EQ(topo.trunks.size(), 11u);
}

TEST(Dragonfly, LargerInstanceTrunkCount) {
  // 4 groups x 4 routers x 2 nodes: 32 NIC + 4*C(4,2)=24 local +
  // C(4,2)=6 global.
  const Topology topo = Topology::dragonfly(4, 4, 2, 1, 1, 1);
  EXPECT_EQ(topo.num_nodes, 32);
  EXPECT_EQ(topo.trunks.size(), 32u + 24u + 6u);
}

TEST(Dragonfly, PathLengths) {
  Network net(small_dragonfly());
  // Same router: node -> router -> node.
  EXPECT_EQ(net.path(0, 1).size(), 2u);
  // Same group, different router: + one local hop.
  EXPECT_EQ(net.path(0, 2).size(), 3u);
  // Different group: at most nic + local + global + local + nic.
  EXPECT_LE(net.path(0, 7).size(), 5u);
  EXPECT_GE(net.path(0, 7).size(), 3u);
}

TEST(Dragonfly, GlobalTrunkIsTheInterGroupBottleneck) {
  // Saturate the global link with several cross-group flows: their sum
  // must not exceed the global capacity.
  Network net(Topology::dragonfly(2, 2, 4, 10e9, 40e9, 15e9));
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<Flow> flows;
  // Group 0 nodes: 0..7, group 1 nodes: 8..15.
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(message_task(i, 8 + i));
    flows.push_back({tasks.back().get(), i, 8 + i, 0.0});
  }
  net.compute_rates(flows);
  double total = 0.0;
  for (const Flow& flow : flows) {
    EXPECT_GT(flow.rate, 0.0);
    total += flow.rate;
  }
  EXPECT_LE(total, 15e9 + 1.0);
  EXPECT_GT(total, 14e9);  // and it is actually saturated
}

TEST(Dragonfly, IntraGroupTrafficAvoidsGlobalLinks) {
  Network net(Topology::dragonfly(2, 2, 4, 10e9, 40e9, 15e9));
  auto cross = message_task(0, 8);   // inter-group
  auto local = message_task(1, 4);   // intra-group, different router
  std::vector<Flow> flows = {{cross.get(), 0, 8, 0.0},
                             {local.get(), 1, 4, 0.0}};
  net.compute_rates(flows);
  // Both are NIC-limited: no shared bottleneck between them.
  EXPECT_NEAR(flows[0].rate, 10e9, 1.0);
  EXPECT_NEAR(flows[1].rate, 10e9, 1.0);
}

TEST(Dragonfly, ValidatesDimensions) {
  EXPECT_THROW(Topology::dragonfly(0, 1, 1, 1, 1, 1), InvariantError);
  EXPECT_THROW(Topology::dragonfly(1, 0, 1, 1, 1, 1), InvariantError);
  EXPECT_THROW(Topology::dragonfly(1, 1, 0, 1, 1, 1), InvariantError);
}

TEST(Dragonfly, ConnectedForVariousSizes) {
  // Building a Network verifies connectivity (throws otherwise).
  for (const auto& [g, r, n] :
       std::vector<std::tuple<int, int, int>>{{1, 1, 2}, {2, 1, 1},
                                              {3, 2, 2}, {4, 4, 2}}) {
    EXPECT_NO_THROW(Network(Topology::dragonfly(g, r, n, 1e9, 2e9, 1e9)));
  }
}

}  // namespace
}  // namespace hpas::sim
