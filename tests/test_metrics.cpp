// Tests for the monitoring layer: metric ids, time series, store,
// collector, CSV export, and the host /proc samplers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "metrics/collector.hpp"
#include "metrics/csv.hpp"
#include "metrics/host_samplers.hpp"
#include "metrics/metric_id.hpp"
#include "metrics/store.hpp"
#include "metrics/time_series.hpp"

namespace hpas::metrics {
namespace {

TEST(MetricId, FullNameUsesPaperConvention) {
  const MetricId id{"user", "procstat"};
  EXPECT_EQ(id.full_name(), "user::procstat");
}

TEST(MetricId, ParseRoundTrip) {
  const MetricId id = parse_metric_id("L2_RQSTS:MISS::spapiHASW");
  EXPECT_EQ(id.metric, "L2_RQSTS:MISS");  // inner ':' belongs to the metric
  EXPECT_EQ(id.sampler, "spapiHASW");
  EXPECT_EQ(parse_metric_id("plain").metric, "plain");
  EXPECT_EQ(parse_metric_id("plain").sampler, "");
}

TEST(TimeSeries, AppendAndAccess) {
  TimeSeries ts;
  ts.append(0.0, 1.0);
  ts.append(1.0, 2.0);
  ts.append(1.0, 3.0);  // equal timestamps allowed
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.value_at(2), 3.0);
  EXPECT_DOUBLE_EQ(ts.timestamp_at(1), 1.0);
}

TEST(TimeSeries, RejectsBackwardsTimestamps) {
  TimeSeries ts;
  ts.append(5.0, 1.0);
  EXPECT_THROW(ts.append(4.9, 1.0), InvariantError);
}

TEST(TimeSeries, ValuesBetweenIsHalfOpen) {
  TimeSeries ts;
  for (int t = 0; t < 10; ++t) ts.append(t, t * 10.0);
  const auto window = ts.values_between(2.0, 5.0);
  EXPECT_EQ(window, (std::vector<double>{20.0, 30.0, 40.0}));
  EXPECT_TRUE(ts.values_between(100.0, 200.0).empty());
}

TEST(TimeSeries, DeltasConvertCountersToRates) {
  TimeSeries ts;
  ts.append(0, 100);
  ts.append(1, 150);
  ts.append(2, 160);
  EXPECT_EQ(ts.deltas(), (std::vector<double>{50.0, 10.0}));
  TimeSeries single;
  single.append(0, 1);
  EXPECT_TRUE(single.deltas().empty());
}

TEST(MetricStore, RecordAndLookup) {
  MetricStore store;
  store.record({"user", "procstat"}, 0.0, 1.0);
  store.record({"user", "procstat"}, 1.0, 2.0);
  store.record({"Memfree", "meminfo"}, 0.0, 5.0);
  EXPECT_EQ(store.metric_count(), 2u);
  EXPECT_TRUE(store.contains({"user", "procstat"}));
  EXPECT_FALSE(store.contains({"user", "vmstat"}));
  EXPECT_EQ(store.series({"user", "procstat"}).size(), 2u);
  EXPECT_THROW(store.series({"x", "y"}), InvariantError);
}

TEST(MetricStore, MetricIdsSortedDeterministically) {
  MetricStore store;
  store.record({"z", "b"}, 0, 0);
  store.record({"a", "b"}, 0, 0);
  store.record({"a", "a"}, 0, 0);
  const auto ids = store.metric_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0].full_name(), "a::a");
  EXPECT_EQ(ids[1].full_name(), "a::b");
  EXPECT_EQ(ids[2].full_name(), "z::b");
}

class CountingSampler final : public Sampler {
 public:
  std::string name() const override { return "count"; }
  std::vector<Sample> sample() override {
    ++polls_;
    return {{{"value", name()}, static_cast<double>(polls_)}};
  }
  int polls_ = 0;
};

TEST(Collector, PollsAllSamplersWithTimestamp) {
  MetricStore store;
  Collector collector(&store);
  auto sampler = std::make_shared<CountingSampler>();
  collector.add_sampler(sampler);
  collector.collect(0.0);
  collector.collect(1.0);
  EXPECT_EQ(sampler->polls_, 2);
  const auto& ts = store.series({"value", "count"});
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.value_at(1), 2.0);
  EXPECT_DOUBLE_EQ(ts.timestamp_at(1), 1.0);
}

TEST(Collector, RejectsNulls) {
  EXPECT_THROW(Collector(nullptr), InvariantError);
  MetricStore store;
  Collector collector(&store);
  EXPECT_THROW(collector.add_sampler(nullptr), InvariantError);
}

TEST(Csv, WidetableWithHeaderAndRows) {
  MetricStore store;
  store.record({"a", "s"}, 0.0, 1.0);
  store.record({"a", "s"}, 1.0, 2.0);
  store.record({"b", "s"}, 0.0, 3.0);
  std::ostringstream os;
  write_csv(os, store);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("timestamp,a::s,b::s"), std::string::npos);
  EXPECT_NE(csv.find("0,1,3"), std::string::npos);
  EXPECT_NE(csv.find("1,2,"), std::string::npos);  // missing b at t=1
}

// ---- host samplers against synthetic /proc files --------------------

class HostSamplerTest : public ::testing::Test {
 protected:
  std::string write_file(const std::string& name, const std::string& body) {
    const auto path = std::filesystem::temp_directory_path() /
                      ("hpas_test_" + name + std::to_string(::getpid()));
    std::ofstream out(path);
    out << body;
    files_.push_back(path);
    return path.string();
  }
  void TearDown() override {
    for (const auto& f : files_) std::filesystem::remove(f);
  }
  std::vector<std::filesystem::path> files_;
};

TEST_F(HostSamplerTest, ProcStatParsesAggregateLine) {
  const auto path = write_file(
      "stat", "cpu  100 5 50 800 20 0 3 0 0 0\ncpu0 50 2 25 400 10 0 1 0\n");
  ProcStatSampler sampler(path);
  const auto samples = sampler.sample();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples[0].id.full_name(), "user::procstat");
  EXPECT_DOUBLE_EQ(samples[0].value, 100);
  EXPECT_DOUBLE_EQ(samples[3].value, 800);  // idle
}

TEST_F(HostSamplerTest, ProcStatMissingFileThrows) {
  ProcStatSampler sampler("/nonexistent/file");
  EXPECT_THROW(sampler.sample(), SystemError);
}

TEST_F(HostSamplerTest, MemInfoUsesPaperSpelledMemfree) {
  const auto path = write_file("meminfo",
                               "MemTotal:       131072000 kB\n"
                               "MemFree:        64000000 kB\n"
                               "Cached:         1000 kB\n"
                               "Active:         2000 kB\n");
  MemInfoSampler sampler(path);
  const auto samples = sampler.sample();
  bool found = false;
  for (const auto& s : samples) {
    if (s.id.full_name() == "Memfree::meminfo") {
      found = true;
      EXPECT_DOUBLE_EQ(s.value, 64000000);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(HostSamplerTest, VmStatPicksKnownFields) {
  const auto path = write_file("vmstat",
                               "nr_free_pages 100\npgfault 5000\n"
                               "pgmajfault 10\npgpgin 1\npgpgout 2\n");
  VmStatSampler sampler(path);
  const auto samples = sampler.sample();
  EXPECT_EQ(samples.size(), 4u);
}

TEST(HostSamplers, CpuUtilizationBetween) {
  const std::vector<Sample> before = {
      {{"user", "procstat"}, 100}, {{"nice", "procstat"}, 0},
      {{"sys", "procstat"}, 50},   {{"idle", "procstat"}, 800},
      {{"iowait", "procstat"}, 50},
  };
  const std::vector<Sample> after = {
      {{"user", "procstat"}, 160}, {{"nice", "procstat"}, 0},
      {{"sys", "procstat"}, 70},   {{"idle", "procstat"}, 810},
      {{"iowait", "procstat"}, 60},
  };
  // busy delta = 80, total delta = 100.
  EXPECT_NEAR(cpu_utilization_between(before, after), 0.8, 1e-12);
}

TEST(HostSamplers, LiveProcIfAvailable) {
  // On Linux CI this exercises the real files end-to-end.
  if (!std::filesystem::exists("/proc/stat")) GTEST_SKIP();
  ProcStatSampler stat;
  MemInfoSampler mem;
  EXPECT_GE(stat.sample().size(), 5u);
  EXPECT_GE(mem.sample().size(), 2u);
}

}  // namespace
}  // namespace hpas::metrics
