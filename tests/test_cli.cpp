// Tests for the CLI option parser (common/cli.hpp).
#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpas {
namespace {

CliParser make_parser() {
  CliParser parser("test", "test program");
  parser
      .add({.long_name = "size", .short_name = 's', .value_name = "BYTES",
            .help = "a size", .default_value = "64K", .required = false})
      .add({.long_name = "verbose", .short_name = 'v', .value_name = "",
            .help = "a flag", .default_value = std::nullopt,
            .required = false})
      .add({.long_name = "mode", .short_name = '\0', .value_name = "MODE",
            .help = "required", .default_value = std::nullopt,
            .required = true});
  return parser;
}

TEST(Cli, LongOptionsWithSeparateValue) {
  const auto args = make_parser().parse({"--mode", "fast", "--size", "1M"});
  EXPECT_EQ(args.value("mode"), "fast");
  EXPECT_EQ(args.value("size"), "1M");
}

TEST(Cli, LongOptionsWithEqualsValue) {
  const auto args = make_parser().parse({"--mode=slow", "--size=2M"});
  EXPECT_EQ(args.value("mode"), "slow");
  EXPECT_EQ(args.value("size"), "2M");
}

TEST(Cli, ShortOptions) {
  const auto args = make_parser().parse({"--mode", "x", "-s", "4K", "-v"});
  EXPECT_EQ(args.value("size"), "4K");
  EXPECT_TRUE(args.flag("verbose"));
}

TEST(Cli, DefaultsApplied) {
  const auto args = make_parser().parse({"--mode", "x"});
  EXPECT_EQ(args.value("size"), "64K");
  EXPECT_FALSE(args.flag("verbose"));
}

TEST(Cli, MissingRequiredThrows) {
  EXPECT_THROW(make_parser().parse({"-s", "1K"}), ConfigError);
}

TEST(Cli, HelpSuppressesRequiredCheck) {
  const auto args = make_parser().parse({"--help"});
  EXPECT_TRUE(args.flag("help"));
}

TEST(Cli, UnknownOptionThrows) {
  EXPECT_THROW(make_parser().parse({"--mode", "x", "--bogus"}), ConfigError);
  EXPECT_THROW(make_parser().parse({"--mode", "x", "-z"}), ConfigError);
}

TEST(Cli, MissingValueThrows) {
  EXPECT_THROW(make_parser().parse({"--mode"}), ConfigError);
}

TEST(Cli, FlagWithValueThrows) {
  EXPECT_THROW(make_parser().parse({"--mode", "x", "--verbose=yes"}),
               ConfigError);
}

TEST(Cli, PositionalAndDoubleDash) {
  const auto args =
      make_parser().parse({"--mode", "x", "pos1", "--", "--size", "-v"});
  ASSERT_EQ(args.positional().size(), 3u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "--size");  // after --, options are literal
  EXPECT_EQ(args.positional()[2], "-v");
  EXPECT_EQ(args.value("size"), "64K");  // default, not consumed
}

TEST(Cli, BundledShortOptionsRejected) {
  EXPECT_THROW(make_parser().parse({"--mode", "x", "-sv"}), ConfigError);
}

TEST(Cli, DuplicateRegistrationThrows) {
  CliParser parser("p", "d");
  parser.add({.long_name = "x", .short_name = 'x', .value_name = "V",
              .help = "", .default_value = std::nullopt, .required = false});
  EXPECT_THROW(
      parser.add({.long_name = "x", .short_name = '\0', .value_name = "V",
                  .help = "", .default_value = std::nullopt,
                  .required = false}),
      InvariantError);
  EXPECT_THROW(
      parser.add({.long_name = "y", .short_name = 'x', .value_name = "V",
                  .help = "", .default_value = std::nullopt,
                  .required = false}),
      InvariantError);
}

TEST(Cli, HelpTextMentionsOptionsAndDefaults) {
  const std::string help = make_parser().help_text();
  EXPECT_NE(help.find("--size"), std::string::npos);
  EXPECT_NE(help.find("[default: 64K]"), std::string::npos);
  EXPECT_NE(help.find("(required)"), std::string::npos);
}

TEST(Cli, ValueOrNone) {
  const auto args = make_parser().parse({"--mode", "x"});
  EXPECT_TRUE(args.value_or_none("size").has_value());
  EXPECT_FALSE(args.value_or_none("nonexistent").has_value());
}

// --- checked numeric flag accessors ------------------------------------
// A malformed numeric flag must surface as a ConfigError (exit 2 through
// the CLIs' usage-error handler) that *names the flag*, never as a bare
// std::stod/std::stoi message through the generic fatal handler.

CliParser numeric_parser() {
  CliParser parser("test", "numeric flags");
  parser
      .add({.long_name = "keep", .short_name = '\0', .value_name = "FRAC",
            .help = "a fraction", .default_value = "0.9", .required = false})
      .add({.long_name = "threads", .short_name = 'j', .value_name = "N",
            .help = "a count", .default_value = "0", .required = false})
      .add({.long_name = "deadline", .short_name = '\0', .value_name = "TIME",
            .help = "a duration", .default_value = "0", .required = false});
  return parser;
}

/// EXPECT that `fn` throws a ConfigError whose message names `flag`.
template <typename Fn>
void expect_flag_error(Fn fn, const std::string& flag) {
  try {
    fn();
    FAIL() << "expected ConfigError naming " << flag;
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(flag), std::string::npos)
        << "message does not name the flag: " << e.what();
  }
}

TEST(Cli, FlagU64ParsesAndNamesFlagOnGarbage) {
  const auto ok = numeric_parser().parse({"--threads", "8"});
  EXPECT_EQ(flag_u64(ok, "threads"), 8u);
  const auto bad = numeric_parser().parse({"--threads", "abc"});
  expect_flag_error([&] { flag_u64(bad, "threads"); }, "--threads");
  const auto negative = numeric_parser().parse({"-j", "-3"});
  expect_flag_error([&] { flag_u64(negative, "threads"); }, "--threads");
}

TEST(Cli, FlagDoubleParsesAndNamesFlagOnGarbage) {
  const auto ok = numeric_parser().parse({"--keep", "0.75"});
  EXPECT_DOUBLE_EQ(flag_double(ok, "keep"), 0.75);
  const auto bad = numeric_parser().parse({"--keep", "abc"});
  expect_flag_error([&] { flag_double(bad, "keep"); }, "--keep");
  const auto trailing = numeric_parser().parse({"--keep", "0.9x"});
  expect_flag_error([&] { flag_double(trailing, "keep"); }, "--keep");
}

TEST(Cli, FlagDurationParsesAndNamesFlagOnGarbage) {
  const auto ok = numeric_parser().parse({"--deadline", "5m"});
  EXPECT_DOUBLE_EQ(flag_duration_seconds(ok, "deadline"), 300.0);
  const auto bad = numeric_parser().parse({"--deadline", "soon"});
  expect_flag_error([&] { flag_duration_seconds(bad, "deadline"); },
                    "--deadline");
  const auto suffix = numeric_parser().parse({"--deadline", "5parsecs"});
  expect_flag_error([&] { flag_duration_seconds(suffix, "deadline"); },
                    "--deadline");
}

}  // namespace
}  // namespace hpas
