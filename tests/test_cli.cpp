// Tests for the CLI option parser (common/cli.hpp).
#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpas {
namespace {

CliParser make_parser() {
  CliParser parser("test", "test program");
  parser
      .add({.long_name = "size", .short_name = 's', .value_name = "BYTES",
            .help = "a size", .default_value = "64K", .required = false})
      .add({.long_name = "verbose", .short_name = 'v', .value_name = "",
            .help = "a flag", .default_value = std::nullopt,
            .required = false})
      .add({.long_name = "mode", .short_name = '\0', .value_name = "MODE",
            .help = "required", .default_value = std::nullopt,
            .required = true});
  return parser;
}

TEST(Cli, LongOptionsWithSeparateValue) {
  const auto args = make_parser().parse({"--mode", "fast", "--size", "1M"});
  EXPECT_EQ(args.value("mode"), "fast");
  EXPECT_EQ(args.value("size"), "1M");
}

TEST(Cli, LongOptionsWithEqualsValue) {
  const auto args = make_parser().parse({"--mode=slow", "--size=2M"});
  EXPECT_EQ(args.value("mode"), "slow");
  EXPECT_EQ(args.value("size"), "2M");
}

TEST(Cli, ShortOptions) {
  const auto args = make_parser().parse({"--mode", "x", "-s", "4K", "-v"});
  EXPECT_EQ(args.value("size"), "4K");
  EXPECT_TRUE(args.flag("verbose"));
}

TEST(Cli, DefaultsApplied) {
  const auto args = make_parser().parse({"--mode", "x"});
  EXPECT_EQ(args.value("size"), "64K");
  EXPECT_FALSE(args.flag("verbose"));
}

TEST(Cli, MissingRequiredThrows) {
  EXPECT_THROW(make_parser().parse({"-s", "1K"}), ConfigError);
}

TEST(Cli, HelpSuppressesRequiredCheck) {
  const auto args = make_parser().parse({"--help"});
  EXPECT_TRUE(args.flag("help"));
}

TEST(Cli, UnknownOptionThrows) {
  EXPECT_THROW(make_parser().parse({"--mode", "x", "--bogus"}), ConfigError);
  EXPECT_THROW(make_parser().parse({"--mode", "x", "-z"}), ConfigError);
}

TEST(Cli, MissingValueThrows) {
  EXPECT_THROW(make_parser().parse({"--mode"}), ConfigError);
}

TEST(Cli, FlagWithValueThrows) {
  EXPECT_THROW(make_parser().parse({"--mode", "x", "--verbose=yes"}),
               ConfigError);
}

TEST(Cli, PositionalAndDoubleDash) {
  const auto args =
      make_parser().parse({"--mode", "x", "pos1", "--", "--size", "-v"});
  ASSERT_EQ(args.positional().size(), 3u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "--size");  // after --, options are literal
  EXPECT_EQ(args.positional()[2], "-v");
  EXPECT_EQ(args.value("size"), "64K");  // default, not consumed
}

TEST(Cli, BundledShortOptionsRejected) {
  EXPECT_THROW(make_parser().parse({"--mode", "x", "-sv"}), ConfigError);
}

TEST(Cli, DuplicateRegistrationThrows) {
  CliParser parser("p", "d");
  parser.add({.long_name = "x", .short_name = 'x', .value_name = "V",
              .help = "", .default_value = std::nullopt, .required = false});
  EXPECT_THROW(
      parser.add({.long_name = "x", .short_name = '\0', .value_name = "V",
                  .help = "", .default_value = std::nullopt,
                  .required = false}),
      InvariantError);
  EXPECT_THROW(
      parser.add({.long_name = "y", .short_name = 'x', .value_name = "V",
                  .help = "", .default_value = std::nullopt,
                  .required = false}),
      InvariantError);
}

TEST(Cli, HelpTextMentionsOptionsAndDefaults) {
  const std::string help = make_parser().help_text();
  EXPECT_NE(help.find("--size"), std::string::npos);
  EXPECT_NE(help.find("[default: 64K]"), std::string::npos);
  EXPECT_NE(help.find("(required)"), std::string::npos);
}

TEST(Cli, ValueOrNone) {
  const auto args = make_parser().parse({"--mode", "x"});
  EXPECT_TRUE(args.value_or_none("size").has_value());
  EXPECT_FALSE(args.value_or_none("nonexistent").has_value());
}

}  // namespace
}  // namespace hpas
