// Engine cancellation bookkeeping under load (sim/engine/simulator.cpp).
//
// Pins the two contracts the slot-map rewrite introduced: (1)
// pending_events() counts *live* events only -- cancelled tombstones
// still physically queued are bookkeeping, not work, and must not leak
// into the count the apps' drain loops and the runner's progress checks
// read; (2) a cancel storm leaves the heap bounded -- compaction keeps
// queued tombstones under max(compaction floor, live events) at every
// point, while the surviving events still fire in exact (time, FIFO)
// order.
#include "sim/engine/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace hpas::sim {
namespace {

TEST(PendingEvents, CountsLiveEventsNotTombstones) {
  Simulator sim;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 100; ++i)
    handles.push_back(sim.schedule_at(1.0 + i, [&] { ++fired; }));
  ASSERT_EQ(sim.pending_events(), 100u);

  // Cancel the second half: the tombstones stay queued (lazy cancel) but
  // the live count drops immediately.
  for (std::size_t i = 50; i < handles.size(); ++i) sim.cancel(handles[i]);
  EXPECT_EQ(sim.pending_events(), 50u);
  EXPECT_EQ(sim.queued_tombstones(), 50u);

  // Double-cancel must not double-count.
  for (std::size_t i = 50; i < handles.size(); ++i) sim.cancel(handles[i]);
  EXPECT_EQ(sim.pending_events(), 50u);
  EXPECT_EQ(sim.queued_tombstones(), 50u);

  // Half the live events fire; the count tracks exactly what remains.
  sim.run_until(25.5);
  EXPECT_EQ(fired, 25);
  EXPECT_EQ(sim.pending_events(), 25u);

  sim.run();
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.queued_tombstones(), 0u);
}

TEST(PendingEvents, CancellingEverythingReportsZeroWithoutRunning) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 32; ++i)
    handles.push_back(sim.schedule_at(5.0, [] {}));
  for (const auto& h : handles) sim.cancel(h);
  // The old engine reported 32 here (the tombstones were still queued),
  // which made "drain until pending_events() == 0" loops spin.
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);  // nothing live ever fired
}

/// One cancel-storm instance: 100k/shard_count interleaved schedule and
/// cancel operations against a reference model, with this engine's
/// tombstone population checked after every operation. The floor comes
/// from Simulator::compaction_floor() -- the engine's own constant, so
/// the bound cannot drift from the implementation -- and applies *per
/// engine instance*: every shard of a sharded sweep owns its own
/// Simulator, its own heap, and its own floor.
void run_cancel_storm(std::uint64_t seed, int ops) {
  struct ModelEvent {
    double time;
    int seq;
    bool cancelled = false;
  };

  Rng rng(seed);
  Simulator sim;
  std::vector<ModelEvent> model;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  std::size_t max_tombstones = 0;

  for (int op = 0; op < ops; ++op) {
    // Cancel-heavy mix (60/40) so tombstones repeatedly cross the
    // compaction threshold.
    if (!handles.empty() && rng.uniform01() < 0.6) {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(handles.size()) - 1));
      sim.cancel(handles[pick]);
      model[pick].cancelled = true;
    } else {
      const double t = static_cast<double>(rng.uniform_int(0, 999));
      const int seq = static_cast<int>(model.size());
      handles.push_back(
          sim.schedule_at(t, [&fired, seq] { fired.push_back(seq); }));
      model.push_back({t, seq, false});
    }
    const std::size_t bound =
        std::max(Simulator::compaction_floor(), sim.pending_events());
    ASSERT_LE(sim.queued_tombstones(), bound) << "after op " << op;
    max_tombstones = std::max(max_tombstones, sim.queued_tombstones());
  }

  // The storm cancelled a multiple of the floor; without compaction the
  // tombstone population would have matched the cancel count at its peak
  // instead of staying under the max(floor, live) envelope asserted
  // after every operation above.
  std::size_t cancelled = 0;
  for (const auto& e : model) cancelled += e.cancelled ? 1u : 0u;
  ASSERT_GT(cancelled, 5u * Simulator::compaction_floor());
  EXPECT_LT(max_tombstones, cancelled);

  sim.run();

  std::vector<std::size_t> order(model.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return model[a].time < model[b].time;
                   });
  std::vector<int> expected;
  for (const std::size_t i : order)
    if (!model[i].cancelled) expected.push_back(model[i].seq);

  EXPECT_EQ(fired, expected);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.queued_tombstones(), 0u);
}

TEST(CancelStorm, SurvivorsFireInOrderAndTombstonesStayBounded) {
  run_cancel_storm(0x57A6u, 100000);
}

TEST(CancelStorm, PerShardEnginesKeepIndependentTombstoneFloors) {
  // Shard-shaped concurrency: one Simulator per shard, each on its own
  // thread, each bounded by its *own* compaction floor. There is no
  // shared engine state, so this must be race-free (the TSan job runs
  // this suite) and every shard's storm must satisfy the same envelope
  // the single-engine storm does.
  const int shard_counts[] = {2, 4, 8};
  for (const int shards : shard_counts) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      // Full-size storms per shard: the floor is per engine, so the
      // workload that crosses it on one engine must cross it on all.
      threads.emplace_back([s] {
        run_cancel_storm(0x57A6u + static_cast<std::uint64_t>(s), 50000);
      });
    }
    for (auto& t : threads) t.join();
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(CancelStorm, CompactionDoesNotPerturbInterleavedScheduling) {
  // Drive tombstones through several compactions while live events keep
  // firing and rescheduling; handles issued before a compaction must
  // still cancel correctly after it (the slot map, not heap position,
  // carries identity).
  Simulator sim;
  Rng rng(0xC0DAu);
  int fired = 0;
  for (int round = 0; round < 8; ++round) {
    std::vector<EventHandle> batch;
    const double base = sim.now() + 1.0;
    for (int i = 0; i < 1000; ++i)
      batch.push_back(sim.schedule_at(
          base + 0.001 * static_cast<double>(i), [&] { ++fired; }));
    // Cancel 90% of the batch in random order.
    for (std::size_t i = batch.size(); i > 1; --i)
      std::swap(batch[i - 1],
                batch[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    for (std::size_t i = 0; i < 900; ++i) sim.cancel(batch[i]);
    sim.run_until(base + 2.0);
  }
  EXPECT_EQ(fired, 8 * 100);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace hpas::sim
