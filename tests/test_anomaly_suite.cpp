// Tests for the anomaly registry / CLI factory layer (anomalies/suite.hpp).
#include "anomalies/suite.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpas::anomalies {
namespace {

TEST(Catalog, HasAllEightAnomaliesInPaperOrder) {
  const auto& catalog = anomaly_catalog();
  ASSERT_EQ(catalog.size(), 8u);
  EXPECT_EQ(catalog[0].name, "cpuoccupy");
  EXPECT_EQ(catalog[1].name, "cachecopy");
  EXPECT_EQ(catalog[2].name, "membw");
  EXPECT_EQ(catalog[3].name, "memeater");
  EXPECT_EQ(catalog[4].name, "memleak");
  EXPECT_EQ(catalog[5].name, "netoccupy");
  EXPECT_EQ(catalog[6].name, "iometadata");
  EXPECT_EQ(catalog[7].name, "iobandwidth");
}

TEST(Catalog, EverySubsystemCovered) {
  bool cpu = false, cache = false, memory = false, network = false,
       storage = false;
  for (const auto& info : anomaly_catalog()) {
    cpu = cpu || info.subsystem == "CPU";
    cache = cache || info.subsystem == "Cache hierarchy";
    memory = memory || info.subsystem == "Memory";
    network = network || info.subsystem == "Network";
    storage = storage || info.subsystem == "Shared storage";
  }
  EXPECT_TRUE(cpu && cache && memory && network && storage);
}

TEST(Catalog, IsKnownAnomaly) {
  EXPECT_TRUE(is_known_anomaly("membw"));
  EXPECT_FALSE(is_known_anomaly("bogus"));
  EXPECT_FALSE(is_known_anomaly(""));
}

TEST(Factory, EveryAnomalyConstructsFromDefaults) {
  for (const auto& info : anomaly_catalog()) {
    const auto parser = make_anomaly_parser(info.name);
    const auto args = parser.parse({});
    const auto anomaly = make_anomaly(info.name, args);
    ASSERT_NE(anomaly, nullptr);
    EXPECT_EQ(anomaly->name(), info.name);
    // Common options applied from defaults.
    EXPECT_DOUBLE_EQ(anomaly->common_options().duration_s, 10.0);
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_anomaly_parser("bogus"), ConfigError);
  ParsedArgs empty;
  EXPECT_THROW(make_anomaly("bogus", empty), ConfigError);
}

TEST(Factory, KnobsReachTheGenerators) {
  const auto parser = make_anomaly_parser("cpuoccupy");
  const auto args = parser.parse({"-u", "37", "-d", "42s", "--seed", "99"});
  const auto anomaly = make_anomaly("cpuoccupy", args);
  EXPECT_DOUBLE_EQ(anomaly->common_options().duration_s, 42.0);
  EXPECT_EQ(anomaly->common_options().seed, 99u);
}

TEST(Factory, InvalidKnobValuesSurfaceAsConfigErrors) {
  const auto parser = make_anomaly_parser("cpuoccupy");
  const auto args = parser.parse({"-u", "150"});
  EXPECT_THROW(make_anomaly("cpuoccupy", args), ConfigError);
}

TEST(Factory, HelpTextListsTable1Knobs) {
  EXPECT_NE(make_anomaly_parser("cachecopy").help_text().find("--multiplier"),
            std::string::npos);
  EXPECT_NE(make_anomaly_parser("netoccupy").help_text().find("--ntasks"),
            std::string::npos);
  EXPECT_NE(make_anomaly_parser("iobandwidth").help_text().find("--size"),
            std::string::npos);
}

/// Parameterized: all 8 parsers accept the shared Table-1 options.
class SuiteCommonOptions : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteCommonOptions, CommonKnobsParse) {
  const auto parser = make_anomaly_parser(GetParam());
  const auto args =
      parser.parse({"--duration", "5s", "--start-delay", "1s", "--seed", "3"});
  const auto anomaly = make_anomaly(GetParam(), args);
  EXPECT_DOUBLE_EQ(anomaly->common_options().duration_s, 5.0);
  EXPECT_DOUBLE_EQ(anomaly->common_options().start_delay_s, 1.0);
  EXPECT_EQ(anomaly->common_options().seed, 3u);
}

INSTANTIATE_TEST_SUITE_P(AllAnomalies, SuiteCommonOptions,
                         ::testing::Values("cpuoccupy", "cachecopy", "membw",
                                           "memeater", "memleak", "netoccupy",
                                           "iometadata", "iobandwidth"));

}  // namespace
}  // namespace hpas::anomalies
