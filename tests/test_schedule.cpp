// Tests for composite anomaly schedules (anomalies/schedule.hpp).
#include "anomalies/schedule.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace hpas::anomalies {
namespace {

TEST(ScheduleParse, BasicFormatWithCommentsAndBlanks) {
  const Schedule schedule = parse_schedule_text(
      "# composite variability pattern\n"
      "\n"
      "at 0s   cpuoccupy -u 80 -d 30s\n"
      "at 10s  memleak -s 20M -d 45s   # trailing comment\n"
      "at 1.5m cachecopy -c L2 -d 20s\n");
  ASSERT_EQ(schedule.entries.size(), 3u);
  EXPECT_DOUBLE_EQ(schedule.entries[0].start_s, 0.0);
  EXPECT_EQ(schedule.entries[0].anomaly, "cpuoccupy");
  EXPECT_EQ(schedule.entries[0].args,
            (std::vector<std::string>{"-u", "80", "-d", "30s"}));
  EXPECT_DOUBLE_EQ(schedule.entries[1].start_s, 10.0);
  EXPECT_DOUBLE_EQ(schedule.entries[2].start_s, 90.0);
}

TEST(ScheduleParse, SpanCoversLatestEnd) {
  const Schedule schedule = parse_schedule_text(
      "at 0s  cpuoccupy -d 30s\n"
      "at 50s memleak -d 20s --start-delay 5s\n");
  EXPECT_DOUBLE_EQ(schedule.span_seconds(), 75.0);  // 50 + 5 + 20
}

TEST(ScheduleParse, ErrorsCarryLineNumbers) {
  try {
    parse_schedule_text("at 0s cpuoccupy -d 1s\nat 5s bogus -d 1s\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(ScheduleParse, RejectsMalformedLines) {
  EXPECT_THROW(parse_schedule_text("cpuoccupy -d 1s\n"), ConfigError);
  EXPECT_THROW(parse_schedule_text("at banana cpuoccupy -d 1s\n"),
               ConfigError);
  EXPECT_THROW(parse_schedule_text("at 0s\n"), ConfigError);
  // Bad per-anomaly args are validated eagerly, with the line number.
  EXPECT_THROW(parse_schedule_text("at 0s cpuoccupy -u 150 -d 1s\n"),
               ConfigError);
}

TEST(ScheduleParse, EmptyScheduleIsValid) {
  const Schedule schedule = parse_schedule_text("# nothing\n\n");
  EXPECT_TRUE(schedule.entries.empty());
  EXPECT_DOUBLE_EQ(schedule.span_seconds(), 0.0);
}

TEST(ScheduleParse, MissingFileThrows) {
  EXPECT_THROW(load_schedule_file("/nonexistent/schedule.txt"), SystemError);
}

TEST(ScheduleRun, ConcurrentInstancesHonourOffsets) {
  const Schedule schedule = parse_schedule_text(
      "at 0s    cpuoccupy -u 30 -d 0.3s -p 50ms\n"
      "at 0.2s  memleak -s 256K -r 20ms -d 0.2s\n");
  Stopwatch sw;
  const auto results = run_schedule(schedule);
  const double elapsed = sw.elapsed_seconds();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_TRUE(result.error.empty()) << result.error;
    EXPECT_GT(result.stats.iterations, 0u);
    // Every entry carries a supervision verdict; a clean run is healthy.
    EXPECT_TRUE(result.supervision.healthy())
        << result.supervision.to_string();
    EXPECT_GE(result.supervision.workers_total, 1u);
    EXPECT_EQ(result.supervision.workers_failed, 0u);
  }
  // The whole composition runs concurrently: well under the serial sum
  // but at least the longest chain (0.2 + 0.2 = 0.4s).
  EXPECT_GE(elapsed, 0.38);
  EXPECT_LT(elapsed, 2.0);
  // The delayed instance's wall time includes its offset.
  EXPECT_GE(results[1].stats.elapsed_seconds, 0.38);
}

TEST(ScheduleRun, StopRequestTearsEverythingDown) {
  const Schedule schedule = parse_schedule_text(
      "at 0s cpuoccupy -u 20 -d 0\n"   // unlimited
      "at 0s memleak -s 64K -r 10ms -d 0\n");
  std::atomic<bool> stop{false};
  Stopwatch sw;
  std::thread stopper([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    stop.store(true);
  });
  const auto results = run_schedule(schedule, &stop);
  stopper.join();
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
  for (const auto& result : results) EXPECT_TRUE(result.error.empty());
}

}  // namespace
}  // namespace hpas::anomalies
