// Fault-injection tests against a real (tiny) filesystem: a 64 KiB tmpfs
// mount delivers genuine ENOSPC/inode exhaustion to the io generators, so
// the supervision layer's transient-vs-fatal behaviour is exercised end
// to end -- iometadata must survive by cleaning up its own files and
// retrying, iobandwidth must die *loudly* with a structured report.
//
// Mounting tmpfs needs CAP_SYS_ADMIN; without it every test here skips
// (GTEST_SKIP), keeping the suite green for unprivileged developers while
// the CI fault-injection job runs them for real.
#include <sys/mount.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "anomalies/iobandwidth.hpp"
#include "anomalies/iometadata.hpp"

namespace hpas::anomalies {
namespace {

namespace fs = std::filesystem;

/// Mounts a 64 KiB / 24-inode tmpfs for the test and detaches it after.
class TinyFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/hpas_tinyfs_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr) << std::strerror(errno);
    dir_ = tmpl;
    if (::mount("hpas-tinyfs", dir_.c_str(), "tmpfs", 0,
                "size=64k,nr_inodes=24") != 0) {
      const int err = errno;
      std::error_code ignored;
      fs::remove_all(dir_, ignored);
      dir_.clear();
      GTEST_SKIP() << "cannot mount tmpfs (" << std::strerror(err)
                   << "); run with CAP_SYS_ADMIN for fault injection";
    }
    mounted_ = true;
  }

  void TearDown() override {
    if (mounted_) ::umount2(dir_.c_str(), MNT_DETACH);
    if (!dir_.empty()) {
      std::error_code ignored;
      fs::remove_all(dir_, ignored);
    }
    mounted_ = false;
  }

  std::string dir_;
  bool mounted_ = false;
};

TEST_F(TinyFsTest, IoMetadataSurvivesEnospcByCleaningUpAndRetrying) {
  IoMetadataOptions opts;
  opts.common.duration_s = 1.0;
  opts.common.on_error = OnError::kRetry;
  opts.directory = dir_;
  // One batch alone exceeds the 24 inodes, so the worker is guaranteed to
  // hit ENOSPC inside the batch; delete_every is high enough that only the
  // transient-hook cleanup can free space.
  opts.files_per_iteration = 40;
  opts.delete_every = 1000;
  opts.ntasks = 1;
  IoMetadata anomaly(opts);
  const RunStats stats = anomaly.run();

  // The generator kept producing metadata load across the faults...
  EXPECT_GT(anomaly.metadata_ops(), 40u);
  EXPECT_GT(stats.work_amount, 0.0);
  // ...because ENOSPC was recovered by cleanup + retry, not fatal.
  const SupervisionReport& report = anomaly.supervision_report();
  EXPECT_FALSE(report.fatal()) << report.to_string();
  EXPECT_GT(report.transient_recovered, 0u);
}

TEST_F(TinyFsTest, IoBandwidthReportsTerminalEnospcStructured) {
  IoBandwidthOptions opts;
  opts.common.duration_s = 30.0;  // the failure must end the run early
  opts.common.on_error = OnError::kRetry;
  opts.common.max_retries = 3;  // keep the backoff short
  opts.directory = dir_;
  opts.file_bytes = 1024 * 1024;  // 16x the filesystem
  opts.block_bytes = 16 * 1024;
  opts.ntasks = 1;
  IoBandwidth anomaly(opts);
  const RunStats stats = anomaly.run();

  // The anomaly shut down promptly instead of sleeping out the duration.
  EXPECT_LT(stats.elapsed_seconds, 10.0);
  const SupervisionReport& report = anomaly.supervision_report();
  ASSERT_TRUE(report.fatal()) << "ENOSPC must be surfaced, not swallowed";
  ASSERT_FALSE(report.failures.empty());
  const WorkerFailure& failure = report.failures.front();
  EXPECT_EQ(failure.op, FailureOp::kWrite);
  EXPECT_TRUE(failure.err == ENOSPC || failure.err == EDQUOT)
      << errno_name(failure.err);
  EXPECT_EQ(failure.task, 0u);
  // The report names anomaly/task/op/errno.
  const std::string text = report.to_string();
  EXPECT_NE(text.find("iobandwidth"), std::string::npos) << text;
  EXPECT_NE(text.find("task 0"), std::string::npos) << text;
  EXPECT_NE(text.find("write"), std::string::npos) << text;
  EXPECT_NE(text.find("ENOSPC"), std::string::npos) << text;
}

TEST_F(TinyFsTest, AbortModeFailsOnFirstErrorWithoutRetries) {
  IoBandwidthOptions opts;
  opts.common.duration_s = 30.0;
  opts.common.on_error = OnError::kAbort;
  opts.directory = dir_;
  opts.file_bytes = 1024 * 1024;
  opts.block_bytes = 16 * 1024;
  opts.ntasks = 1;
  IoBandwidth anomaly(opts);
  (void)anomaly.run();

  const SupervisionReport& report = anomaly.supervision_report();
  ASSERT_TRUE(report.fatal());
  ASSERT_FALSE(report.failures.empty());
  // Abort mode consumed exactly one attempt: no retries at all.
  EXPECT_EQ(report.failures.front().attempts, 1u);
  EXPECT_EQ(report.retries, 0u);
}

}  // namespace
}  // namespace hpas::anomalies
