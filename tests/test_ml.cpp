// Tests for the ML stack: dataset/folds, CART, random forest, AdaBoost,
// and evaluation metrics.
#include <algorithm>
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/adaboost.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/evaluation.hpp"
#include "ml/random_forest.hpp"

namespace hpas::ml {
namespace {

/// Two Gaussian blobs per class along feature 0; feature 1 is noise.
Dataset make_blobs(std::size_t per_class, double separation,
                   std::uint64_t seed) {
  Dataset data;
  data.class_names = {"lo", "hi"};
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({rng.normal(0.0, 1.0), rng.uniform01()}, 0);
    data.add({rng.normal(separation, 1.0), rng.uniform01()}, 1);
  }
  return data;
}

/// XOR over two features: linearly inseparable, depth >= 2 required.
Dataset make_xor(std::size_t n, std::uint64_t seed) {
  Dataset data;
  data.class_names = {"zero", "one"};
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    data.add({x, y}, (x > 0) != (y > 0) ? 1 : 0);
  }
  return data;
}

TEST(Dataset, AddValidates) {
  Dataset data;
  data.class_names = {"a", "b"};
  data.add({1.0, 2.0}, 0);
  EXPECT_THROW(data.add({1.0}, 0), InvariantError);       // dim mismatch
  EXPECT_THROW(data.add({1.0, 2.0}, 2), InvariantError);  // bad label
  EXPECT_EQ(data.size(), 1u);
  EXPECT_EQ(data.num_features(), 2u);
}

TEST(Dataset, SelectSubsets) {
  Dataset data = make_blobs(10, 3.0, 1);
  const Dataset subset = data.select({0, 2, 4});
  EXPECT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.labels[0], data.labels[0]);
  EXPECT_TRUE(std::ranges::equal(subset.row(1), data.row(2)));
  EXPECT_THROW(data.select({9999}), InvariantError);
}

TEST(StratifiedKFold, PartitionsAndPreservesRatios) {
  Dataset data = make_blobs(30, 3.0, 2);  // 60 samples, 30/30
  Rng rng(3);
  const auto folds = stratified_k_fold(data, 3, rng);
  ASSERT_EQ(folds.size(), 3u);
  std::vector<int> seen(data.size(), 0);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.test_indices.size(), 20u);
    EXPECT_EQ(fold.train_indices.size(), 40u);
    int per_class[2] = {0, 0};
    for (const auto i : fold.test_indices) {
      ++seen[i];
      ++per_class[data.labels[i]];
    }
    EXPECT_EQ(per_class[0], 10);  // stratification
    EXPECT_EQ(per_class[1], 10);
  }
  for (const int s : seen) EXPECT_EQ(s, 1);  // exact partition
}

TEST(StratifiedKFold, Validates) {
  Dataset data = make_blobs(2, 3.0, 4);
  Rng rng(5);
  EXPECT_THROW(stratified_k_fold(data, 1, rng), InvariantError);
}

TEST(DecisionTree, PerfectOnSeparableData) {
  Dataset data = make_blobs(50, 10.0, 6);
  DecisionTree tree;
  tree.fit(data);
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (tree.predict(data.row(i)) == data.labels[i]) ++correct;
  }
  EXPECT_EQ(correct, static_cast<int>(data.size()));
}

TEST(DecisionTree, SolvesXor) {
  Dataset data = make_xor(400, 7);
  DecisionTree tree(TreeOptions{.max_depth = 6});
  tree.fit(data);
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (tree.predict(data.row(i)) == data.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(data.size()),
            0.95);
  EXPECT_GE(tree.depth(), 2);
}

TEST(DecisionTree, DepthLimitRespected) {
  Dataset data = make_xor(200, 8);
  DecisionTree stump(TreeOptions{.max_depth = 1});
  stump.fit(data);
  EXPECT_LE(stump.depth(), 2);  // root + leaves
}

TEST(DecisionTree, MinLeafRespected) {
  Dataset data = make_blobs(20, 1.0, 9);
  DecisionTree tree(TreeOptions{.max_depth = 20, .min_samples_leaf = 10});
  tree.fit(data);
  // With 40 samples and >=10 per leaf, at most 4 leaves => few nodes.
  EXPECT_LE(tree.node_count(), 9u);
}

TEST(DecisionTree, SampleWeightsSteerTheFit) {
  // Two overlapping points with conflicting labels; the heavier one wins.
  Dataset data;
  data.class_names = {"a", "b"};
  data.add({0.0}, 0);
  data.add({0.0}, 1);
  DecisionTree tree;
  tree.fit(data, {}, {0.9, 0.1});
  EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 0);
  tree.fit(data, {}, {0.1, 0.9});
  EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 1);
}

TEST(DecisionTree, PredictProbaSumsToOne) {
  Dataset data = make_blobs(30, 2.0, 10);
  DecisionTree tree(TreeOptions{.max_depth = 3});
  tree.fit(data);
  const auto proba = tree.predict_proba(data.row(0));
  double sum = 0;
  for (const double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DecisionTree, UntrainedThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), InvariantError);
}

TEST(RandomForest, BeatsSingleStumpOnXor) {
  Dataset train = make_xor(400, 11);
  Dataset test = make_xor(200, 12);
  RandomForest forest(ForestOptions{.num_trees = 25, .max_depth = 8});
  forest.fit(train);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (forest.predict(test.row(i)) == test.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()),
            0.9);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  Dataset data = make_xor(200, 13);
  RandomForest f1(ForestOptions{.num_trees = 10, .seed = 99});
  RandomForest f2(ForestOptions{.num_trees = 10, .seed = 99});
  f1.fit(data);
  f2.fit(data);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(f1.predict(data.row(i)), f2.predict(data.row(i)));
  }
}

TEST(AdaBoost, BoostsStumpsPastSingleStump) {
  Dataset train = make_xor(400, 14);
  Dataset test = make_xor(200, 15);

  DecisionTree stump(TreeOptions{.max_depth = 1});
  stump.fit(train);
  int stump_correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (stump.predict(test.row(i)) == test.labels[i]) ++stump_correct;
  }

  AdaBoost boosted(AdaBoostOptions{.num_rounds = 40, .base_max_depth = 2});
  boosted.fit(train);
  int boosted_correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (boosted.predict(test.row(i)) == test.labels[i])
      ++boosted_correct;
  }
  EXPECT_GT(boosted_correct, stump_correct);
  EXPECT_GT(static_cast<double>(boosted_correct) /
                static_cast<double>(test.size()),
            0.85);
}

TEST(FeatureImportance, ConcentratesOnInformativeFeatures) {
  // Labels depend only on features 0 and 1; features 2..9 are noise.
  Dataset data;
  data.class_names = {"zero", "one"};
  Rng rng(21);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x(10);
    for (auto& v : x) v = rng.uniform(-1, 1);
    const int y = (x[0] > 0) != (x[1] > 0) ? 1 : 0;
    data.add(std::move(x), y);
  }
  DecisionTree tree(TreeOptions{.max_depth = 6});
  tree.fit(data);
  const auto& imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 10u);
  double sum = 0.0;
  for (const double v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(imp[0] + imp[1], 0.7);  // informative pair dominates
}

TEST(FeatureImportance, ForestAggregatesAndNormalizes) {
  Dataset data = make_blobs(100, 6.0, 22);  // feature 0 informative
  RandomForest forest(ForestOptions{.num_trees = 15, .max_depth = 6});
  forest.fit(data);
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.8);
}

TEST(FeatureImportance, SingleLeafTreeIsAllZero) {
  Dataset data;
  data.class_names = {"only"};
  data.add({1.0}, 0);
  data.add({2.0}, 0);
  DecisionTree tree;
  tree.fit(data);
  for (const double v : tree.feature_importances()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ConfusionMatrix, MetricsMatchHandComputation) {
  ConfusionMatrix cm(2);
  // class 0: 8 right, 2 predicted as 1; class 1: 9 right, 1 as 0.
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  for (int i = 0; i < 9; ++i) cm.add(1, 1);
  cm.add(1, 0);
  EXPECT_EQ(cm.total(), 20u);
  EXPECT_NEAR(cm.accuracy(), 17.0 / 20.0, 1e-12);
  EXPECT_NEAR(cm.recall(0), 0.8, 1e-12);
  EXPECT_NEAR(cm.precision(0), 8.0 / 9.0, 1e-12);
  const double p = 8.0 / 9.0, r = 0.8;
  EXPECT_NEAR(cm.f1(0), 2 * p * r / (p + r), 1e-12);
  const auto norm = cm.row_normalized();
  EXPECT_NEAR(norm[0][0], 0.8, 1e-12);
  EXPECT_NEAR(norm[1][1], 0.9, 1e-12);
}

TEST(ConfusionMatrix, EmptyClassesSafe) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrix, MergeAccumulates) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(0, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.count(0, 1), 1u);
}

TEST(ConfusionMatrix, Validates) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), InvariantError);
  EXPECT_THROW(cm.add(0, -1), InvariantError);
  ConfusionMatrix other(3);
  EXPECT_THROW(cm.merge(other), InvariantError);
}

}  // namespace
}  // namespace hpas::ml
