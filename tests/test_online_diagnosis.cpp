// End-to-end test of the runtime diagnosis phase: train offline, then
// classify sliding windows of a live (simulated) run where an anomaly
// starts midway -- the paper's "predicts the root cause of performance
// variations occurring at certain times".
#include <gtest/gtest.h>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "common/error.hpp"
#include "ml/diagnosis.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace hpas::ml {
namespace {

DiagnosisDataOptions training_options() {
  DiagnosisDataOptions options;
  options.classes = {"none", "memleak", "cpuoccupy"};
  options.variants_per_app = 2;
  options.run_duration_s = 50.0;
  options.warmup_s = 5.0;
  // Train noise-free: the online windows are extracted noise-free too.
  options.measurement_noise = 0.0;
  return options;
}

class OnlineDiagnosisTest : public ::testing::Test {
 protected:
  static const OnlineDiagnoser& diagnoser() {
    static const OnlineDiagnoser kDiagnoser(
        generate_diagnosis_dataset(training_options()),
        {.window_s = 45.0, .hop_s = 45.0, .include_bandwidth_metrics = false});
    return kDiagnoser;
  }
};

TEST_F(OnlineDiagnosisTest, ClassNamesExposed) {
  EXPECT_EQ(diagnoser().class_names().size(), 3u);
  EXPECT_STREQ(diagnoser().class_name(0), "none");
  EXPECT_STREQ(diagnoser().class_name(2), "cpuoccupy");
  EXPECT_THROW(diagnoser().class_name(3), InvariantError);
}

TEST_F(OnlineDiagnosisTest, DetectsAnomalyOnsetMidRun) {
  // Healthy for 60 s, then cpuoccupy appears and stays.
  auto world = sim::make_voltrino_world();
  world->enable_monitoring(1.0);
  apps::AppSpec spec = apps::app_by_name("miniGhost");
  spec.iterations = 1000000;
  apps::BspApp app(*world, spec,
                   {.nodes = {0, 4}, .ranks_per_node = 4, .first_core = 0});
  world->simulator().schedule_in(60.0, [&world] {
    simanom::inject_cpuoccupy(*world, 0, 0, 90.0, 1e6);
  });
  world->run_until(160.0);

  // Windows: [5,50) healthy, [95,140) anomalous (clear of the onset).
  const auto& store = world->node_store(0);
  const auto healthy = diagnoser().diagnose(store, 5.0, 51.0);
  const auto anomalous = diagnoser().diagnose(store, 95.0, 141.0);
  ASSERT_FALSE(healthy.empty());
  ASSERT_FALSE(anomalous.empty());
  EXPECT_STREQ(diagnoser().class_name(healthy.front().label), "none");
  EXPECT_STREQ(diagnoser().class_name(anomalous.front().label), "cpuoccupy");
}

TEST_F(OnlineDiagnosisTest, WindowGeometry) {
  auto world = sim::make_voltrino_world();
  world->enable_monitoring(1.0);
  world->run_until(200.0);
  const auto windows = diagnoser().diagnose(world->node_store(0), 0.0, 200.0);
  // hop == window == 45 s -> floor((200-45)/45)+1 = 4 windows.
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_DOUBLE_EQ(windows[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(windows[0].t1, 45.0);
  EXPECT_DOUBLE_EQ(windows[3].t0, 135.0);
}

TEST_F(OnlineDiagnosisTest, ExtractionMatchesTrainingConventions) {
  auto world = sim::make_voltrino_world();
  world->enable_monitoring(1.0);
  world->run_until(60.0);
  const auto features = extract_window_features(world->node_store(0), 5.0,
                                                50.0, false, 0.0, nullptr);
  // 9 metrics x 12 statistics (no bandwidth counter).
  EXPECT_EQ(features.size(), 108u);
  const auto with_bw = extract_window_features(world->node_store(0), 5.0,
                                               50.0, true, 0.0, nullptr);
  EXPECT_EQ(with_bw.size(), 120u);
}

TEST(OnlineDiagnoserValidation, RejectsBadOptions) {
  Dataset tiny;
  tiny.class_names = {"none", "x"};
  tiny.add({1.0}, 0);
  tiny.add({2.0}, 1);
  EXPECT_THROW(OnlineDiagnoser(tiny, {.window_s = 0.0, .hop_s = 1.0}),
               InvariantError);
  EXPECT_THROW(OnlineDiagnoser(Dataset{}, {}), InvariantError);
}

}  // namespace
}  // namespace hpas::ml
