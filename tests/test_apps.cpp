// Tests for the application layer: proxy profiles, BSP runtime, STREAM,
// OSU bandwidth, and IOR.
#include <gtest/gtest.h>

#include "apps/bsp_app.hpp"
#include "apps/ior.hpp"
#include "apps/osu_bw.hpp"
#include "apps/profiles.hpp"
#include "apps/stream.hpp"
#include "common/error.hpp"
#include "sim/cluster.hpp"

namespace hpas::apps {
namespace {

TEST(Profiles, AllEightAppsPresent) {
  EXPECT_EQ(proxy_apps().size(), 8u);
  EXPECT_NO_THROW(app_by_name("miniGhost"));
  EXPECT_NO_THROW(app_by_name("sw4lite"));
  EXPECT_THROW(app_by_name("nonexistent"), hpas::ConfigError);
}

TEST(Profiles, Table2FlagsMatchPaper) {
  EXPECT_TRUE(app_by_name("CoMD").cpu_intensive);
  EXPECT_FALSE(app_by_name("CoMD").memory_intensive);
  EXPECT_TRUE(app_by_name("milc").network_intensive);
  EXPECT_TRUE(app_by_name("kripke").cpu_intensive);
  EXPECT_TRUE(app_by_name("kripke").memory_intensive);
  EXPECT_FALSE(app_by_name("cloverleaf").cpu_intensive);
  EXPECT_TRUE(app_by_name("cloverleaf").memory_intensive);
}

TEST(BspApp, RunsToCompletionAndCountsIterations) {
  auto world = sim::make_voltrino_world();
  AppSpec spec = app_by_name("CoMD");
  spec.iterations = 10;
  BspApp app(*world, spec, {.nodes = {0}, .ranks_per_node = 2,
                            .first_core = 0});
  const double elapsed = app.run_to_completion();
  EXPECT_TRUE(app.finished());
  EXPECT_EQ(app.completed_iterations(), 10);
  EXPECT_GT(elapsed, 0.0);
}

TEST(BspApp, MoreIterationsTakeProportionallyLonger) {
  auto run_iters = [](int iters) {
    auto world = sim::make_voltrino_world();
    AppSpec spec = app_by_name("miniMD");
    spec.iterations = iters;
    BspApp app(*world, spec, {.nodes = {0}, .ranks_per_node = 4,
                              .first_core = 0});
    return app.run_to_completion();
  };
  const double t10 = run_iters(10);
  const double t20 = run_iters(20);
  EXPECT_NEAR(t20 / t10, 2.0, 0.05);
}

TEST(BspApp, SlowestRankGatesTheBarrier) {
  // A competing task on rank 0's core halves that rank; the whole app
  // must slow by ~2x, not 1/8 of 2x.
  auto baseline = [] {
    auto world = sim::make_voltrino_world();
    AppSpec spec = app_by_name("miniMD");
    spec.iterations = 20;
    BspApp app(*world, spec, {.nodes = {0}, .ranks_per_node = 4,
                              .first_core = 0});
    return app.run_to_completion();
  }();
  auto contended = [] {
    auto world = sim::make_voltrino_world();
    world->spawn_task("hog", 0, 0, sim::TaskProfile{},
                      sim::Phase::compute(1e15),
                      [](sim::Task&) { return sim::Phase::done(); });
    AppSpec spec = app_by_name("miniMD");
    spec.iterations = 20;
    BspApp app(*world, spec, {.nodes = {0}, .ranks_per_node = 4,
                              .first_core = 0});
    return app.run_to_completion();
  }();
  EXPECT_GT(contended / baseline, 1.7);
}

TEST(BspApp, MultiNodeCommunicationFlowsOverNic) {
  auto world = sim::make_voltrino_world();
  AppSpec spec = app_by_name("miniGhost");
  spec.iterations = 5;
  BspApp app(*world, spec, {.nodes = {0, 4}, .ranks_per_node = 2,
                            .first_core = 0});
  app.run_to_completion();
  EXPECT_GT(world->node(0).counters().nic_tx_bytes, 0.0);
}

TEST(BspApp, ValidatesPlacement) {
  auto world = sim::make_voltrino_world();
  EXPECT_THROW(BspApp(*world, app_by_name("CoMD"),
                      {.nodes = {}, .ranks_per_node = 4, .first_core = 0}),
               hpas::InvariantError);
}

TEST(Stream, MeasuresCoreLimitWhenAlone) {
  auto world = sim::make_voltrino_world();
  StreamBench stream(*world, {.node = 0, .core = 0,
                              .bytes_per_pass = 1.0e9, .passes = 5});
  const double best = stream.run_to_completion();
  EXPECT_NEAR(best, world->node(0).config().core_bw_limit, 1e6);
  EXPECT_EQ(stream.pass_rates().size(), 5u);
}

TEST(Stream, ValidatesOptions) {
  auto world = sim::make_voltrino_world();
  EXPECT_THROW(StreamBench(*world, {.node = 0, .core = 0,
                                    .bytes_per_pass = 1e9, .passes = 0}),
               hpas::InvariantError);
}

TEST(OsuBw, BandwidthGrowsWithMessageSize) {
  auto world = sim::make_voltrino_world();
  OsuBandwidth osu(*world, {.src_node = 0,
                            .dst_node = 4,
                            .message_sizes = {16e3, 1e6, 8e6},
                            .window = 8,
                            .msg_latency_s = 15e-6});
  osu.run_to_completion();
  ASSERT_EQ(osu.results().size(), 3u);
  EXPECT_LT(osu.results()[0], osu.results()[1]);
  EXPECT_LT(osu.results()[1], osu.results()[2]);
  // Large messages approach the NIC rate.
  EXPECT_GT(osu.results()[2], 0.8 * 10e9);
}

TEST(OsuBw, SmallMessagesLatencyBound) {
  auto world = sim::make_voltrino_world();
  OsuBandwidth osu(*world, {.src_node = 0,
                            .dst_node = 1,
                            .message_sizes = {16e3},
                            .window = 8,
                            .msg_latency_s = 15e-6});
  osu.run_to_completion();
  // bw ~= S / (latency + S/rate) = 16e3/(15e-6 + 1.6e-6) ~= 0.96 GB/s.
  EXPECT_NEAR(osu.results()[0], 16e3 / (15e-6 + 16e3 / 10e9), 0.05e9);
}

TEST(Ior, ReportsAllThreePhases) {
  auto world = sim::make_chameleon_world();
  IorBench ior(*world, {.node = 0,
                        .write_bytes = 100e6,
                        .metadata_ops = 1000,
                        .read_bytes = 100e6});
  ior.run_to_completion();
  EXPECT_TRUE(ior.finished());
  EXPECT_NEAR(ior.write_rate(), 300e6, 1e6);
  EXPECT_NEAR(ior.read_rate(), 330e6, 1e6);
  EXPECT_NEAR(ior.access_rate(), 3000, 10);
}

TEST(Ior, ValidatesOptions) {
  auto world = sim::make_chameleon_world();
  EXPECT_THROW(IorBench(*world, {.node = 0, .write_bytes = 0,
                                 .metadata_ops = 1, .read_bytes = 1}),
               hpas::InvariantError);
}

}  // namespace
}  // namespace hpas::apps
