// Property-based tests for the DES engine (sim/engine/simulator.cpp).
//
// Seeded-random schedule/cancel programs are executed against a naive
// reference model -- a list sorted by (time, insertion sequence) with
// cancelled entries skipped -- and the engine must fire exactly the same
// events in exactly the same order. Plus the EventHandle cancellation
// semantics the runner relies on: cancel is lazy, cancelling a fired or
// invalid handle is a no-op, double-cancel is safe.
#include "sim/engine/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace hpas::sim {
namespace {

TEST(EventHandle, DefaultConstructedIsInvalidAndCancelIsNoOp) {
  Simulator sim;
  EventHandle none;
  EXPECT_FALSE(none.valid());
  sim.cancel(none);  // must not crash or affect anything
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventHandle, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  const auto h = sim.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(h.valid());
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);  // cancelled events don't advance time
}

TEST(EventHandle, CancelAfterFireIsNoOp) {
  Simulator sim;
  int fired = 0;
  const auto h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.cancel(h);  // already fired: nothing to do
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventHandle, DoubleCancelIsSafe) {
  Simulator sim;
  int fired = 0;
  const auto h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.cancel(h);
  sim.cancel(h);
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventHandle, CancelFromInsideAnEarlierEvent) {
  Simulator sim;
  int fired = 0;
  const auto victim = sim.schedule_at(2.0, [&] { fired += 100; });
  sim.schedule_at(1.0, [&, victim] { sim.cancel(victim); ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorOrdering, EqualTimestampsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  sim.run();
  const std::vector<int> expected = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expected);
}

// Reference model: every scheduled event with (time, seq, cancelled);
// replay fires live entries in (time, seq) order.
struct ModelEvent {
  double time;
  int seq;
  bool cancelled = false;
};

TEST(SimulatorOrdering, RandomProgramsMatchReferenceModel) {
  Rng rng(0xD35u);
  for (int trial = 0; trial < 100; ++trial) {
    Simulator sim;
    std::vector<ModelEvent> model;
    std::vector<EventHandle> handles;
    std::vector<int> fired;  // seq numbers, in engine firing order

    const int ops = static_cast<int>(rng.uniform_int(5, 60));
    for (int op = 0; op < ops; ++op) {
      if (!handles.empty() && rng.uniform01() < 0.25) {
        // Cancel a random prior event (possibly one already cancelled).
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(handles.size()) - 1));
        sim.cancel(handles[pick]);
        model[pick].cancelled = true;
      } else {
        // Coarse time grid on purpose: collisions exercise FIFO ties.
        const double t = static_cast<double>(rng.uniform_int(0, 9));
        const int seq = static_cast<int>(model.size());
        handles.push_back(
            sim.schedule_at(t, [&fired, seq] { fired.push_back(seq); }));
        model.push_back({t, seq, false});
      }
    }

    sim.run();

    std::vector<int> expected;
    std::vector<std::size_t> order(model.size());
    for (std::size_t i = 0; i < model.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return model[a].time < model[b].time;
                     });
    for (const std::size_t i : order)
      if (!model[i].cancelled) expected.push_back(model[i].seq);

    EXPECT_EQ(fired, expected) << "trial " << trial;
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

TEST(SimulatorOrdering, EventsScheduledWhileRunningInterleaveCorrectly) {
  Simulator sim;
  std::vector<std::pair<double, int>> fired;
  sim.schedule_at(1.0, [&] {
    fired.emplace_back(sim.now(), 0);
    // A same-time event scheduled from inside a handler still fires
    // (after the already-queued same-time events, by seq order).
    sim.schedule_at(1.0, [&] { fired.emplace_back(sim.now(), 2); });
    sim.schedule_in(0.5, [&] { fired.emplace_back(sim.now(), 3); });
  });
  sim.schedule_at(1.0, [&] { fired.emplace_back(sim.now(), 1); });
  sim.run();
  const std::vector<std::pair<double, int>> expected = {
      {1.0, 0}, {1.0, 1}, {1.0, 2}, {1.5, 3}};
  EXPECT_EQ(fired, expected);
}

TEST(SimulatorOrdering, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

}  // namespace
}  // namespace hpas::sim
