// Tests for the simulated anomaly injectors: each must reproduce its
// native counterpart's resource signature on the simulated cluster.
#include "simanom/injectors.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/osu_bw.hpp"
#include "apps/stream.hpp"
#include "common/error.hpp"
#include "sim/cluster.hpp"
#include "trace/tracer.hpp"

namespace hpas::simanom {
namespace {

TEST(InjectCpuOccupy, ConsumesRequestedShare) {
  auto world = sim::make_voltrino_world();
  inject_cpuoccupy(*world, 0, 0, 40.0, 30.0);
  world->run_until(30.5);
  // 40% of one core for 30 s = 12 core-seconds of user time.
  EXPECT_NEAR(world->node(0).counters().cpu_user_seconds, 12.0, 0.5);
}

TEST(InjectCpuOccupy, StopsAtDeadline) {
  auto world = sim::make_voltrino_world();
  sim::Task* task = inject_cpuoccupy(*world, 0, 0, 100.0, 5.0);
  world->run_until(20.0);
  EXPECT_TRUE(task->done());
  const double busy = world->node(0).counters().cpu_user_seconds;
  EXPECT_NEAR(busy, 5.0, 0.6);  // nothing accrued after t=5
}

TEST(InjectCpuOccupy, ValidatesUtilization) {
  auto world = sim::make_voltrino_world();
  EXPECT_THROW(inject_cpuoccupy(*world, 0, 0, 0.0, 1.0),
               hpas::InvariantError);
  EXPECT_THROW(inject_cpuoccupy(*world, 0, 0, 101.0, 1.0),
               hpas::InvariantError);
}

TEST(InjectCacheCopy, WorkingSetMatchesLevel) {
  auto world = sim::make_voltrino_world();
  sim::Task* l1 = inject_cachecopy(*world, 0, 0, SimCacheLevel::kL1, 1.0,
                                   100.0);
  sim::Task* l3 = inject_cachecopy(*world, 0, 1, SimCacheLevel::kL3, 1.0,
                                   100.0);
  EXPECT_NEAR(l1->profile().working_set_bytes, 32.0 * 1024, 1.0);
  EXPECT_NEAR(l3->profile().working_set_bytes, 40.0 * 1024 * 1024, 1.0);
}

TEST(InjectMemBw, GeneratesDramTraffic) {
  auto world = sim::make_voltrino_world();
  inject_membw(*world, 0, 0, 10.0);
  world->run_until(10.5);
  // One membw instance streams at the core limit (12.5 GB/s) for 10 s.
  EXPECT_NEAR(world->node(0).counters().dram_bytes, 125.0e9, 2.0e9);
}

TEST(InjectMemBw, ReducesStreamBandwidth) {
  auto world = sim::make_voltrino_world();
  for (int i = 0; i < 3; ++i) inject_membw(*world, 0, 1 + i, 1e6);
  hpas::apps::StreamBench stream(*world, {.node = 0, .core = 0,
                                          .bytes_per_pass = 1e9,
                                          .passes = 3});
  const double best = stream.run_to_completion();
  EXPECT_LT(best, 0.5 * world->node(0).config().core_bw_limit);
}

TEST(InjectMemEater, PlateauAndRelease) {
  auto world = sim::make_voltrino_world();
  world->enable_monitoring(1.0);
  inject_memeater(*world, 0, 0, 100e6, 1e9, 0.5, 60.0);
  world->run_until(30.0);
  const double used_mid = world->node(0).memory_used();
  EXPECT_NEAR(used_mid - world->node(0).config().os_base_memory, 1e9, 0.2e9);
  world->run_until(45.0);
  // Plateau: no further growth.
  EXPECT_NEAR(world->node(0).memory_used(), used_mid, 1e6);
  world->run_until(70.0);
  // Termination releases everything.
  EXPECT_NEAR(world->node(0).memory_used(),
              world->node(0).config().os_base_memory, 1e6);
}

TEST(InjectMemLeak, MonotoneGrowthUntilDeadline) {
  auto world = sim::make_voltrino_world();
  inject_memleak(*world, 0, 0, 50e6, 1.0, 40.0);
  world->run_until(20.0);
  const double used_20 = world->node(0).memory_used();
  world->run_until(35.0);
  const double used_35 = world->node(0).memory_used();
  EXPECT_GT(used_35, used_20 + 10 * 50e6);  // kept leaking
  world->run_until(50.0);
  EXPECT_NEAR(world->node(0).memory_used(),
              world->node(0).config().os_base_memory, 1e6);
}

TEST(InjectMemLeak, CapHoldsFootprint) {
  auto world = sim::make_voltrino_world();
  inject_memleak(*world, 0, 0, 1e9, 0.5, 60.0, /*max_bytes=*/3e9);
  world->run_until(30.0);
  EXPECT_NEAR(world->node(0).memory_used() -
                  world->node(0).config().os_base_memory,
              3e9, 0.1e9);
}

TEST(InjectMemLeak, UncappedLeakEventuallyOoms) {
  sim::NodeConfig small;
  small.memory_bytes = 4.0 * 1024 * 1024 * 1024;
  small.os_base_memory = 1.0 * 1024 * 1024 * 1024;
  sim::World world(small, sim::Topology::star(1, 1e9), sim::FsConfig{});
  sim::Task* leak = inject_memleak(world, 0, 0, 1e9, 0.25, 1e6);
  world.run_until(10.0);
  EXPECT_TRUE(leak->done());  // OOM-killed by the default handler
  EXPECT_NEAR(world.node(0).memory_used(), small.os_base_memory, 1e6);
}

TEST(InjectNetOccupy, ReducesCrossTrunkBandwidth) {
  auto world = sim::make_voltrino_world();
  inject_netoccupy(*world, 1, 5, 2, 100e6, 1e6);
  hpas::apps::OsuBandwidth osu(*world, {.src_node = 0,
                                        .dst_node = 4,
                                        .message_sizes = {8e6},
                                        .window = 8,
                                        .msg_latency_s = 15e-6});
  osu.run_to_completion();
  EXPECT_LT(osu.results()[0], 0.8 * 10e9);
  EXPECT_GT(osu.results()[0], 0.3 * 10e9);  // adaptive-routing floor
}

TEST(InjectNetOccupy, CountsFlits) {
  auto world = sim::make_voltrino_world();
  inject_netoccupy(*world, 0, 4, 1, 100e6, 5.0);
  world->run_until(6.0);
  EXPECT_GT(world->node(0).counters().nic_tx_bytes, 1e9);
}

TEST(InjectIoMetadata, SaturatesMds) {
  auto world = sim::make_chameleon_world();
  inject_iometadata(*world, 1, 4, 10.0);
  world->run_until(10.5);
  // 3000 ops/s MDS saturated for ~10 s (minus ramp).
  EXPECT_GT(world->filesystem().counters().metadata_ops, 25000.0);
}

TEST(InjectIoBandwidth, AlternatesReadAndWrite) {
  auto world = sim::make_chameleon_world();
  inject_iobandwidth(*world, 1, 1, 50e6, 10.0);
  world->run_until(11.0);
  const auto& counters = world->filesystem().counters();
  EXPECT_GT(counters.bytes_written, 50e6 - 1.0);
  EXPECT_GT(counters.bytes_read, 1.0);
}

TEST(InjectByName, AllEightNamesWork) {
  for (const std::string name :
       {"cpuoccupy", "cachecopy", "membw", "memeater", "memleak", "netoccupy",
        "iometadata", "iobandwidth"}) {
    auto world = sim::make_voltrino_world();
    const auto tasks = inject_by_name(*world, name, 0, 0, 1.0);
    EXPECT_FALSE(tasks.empty()) << name;
    world->run_until(3.0);  // runs cleanly to termination
  }
  auto world = sim::make_voltrino_world();
  EXPECT_THROW(inject_by_name(*world, "bogus", 0, 0, 1.0),
               hpas::ConfigError);
}

// Sim mirror of the native supervision layer: a scheduled injector failure
// kills tasks mid-run and leaves an auditable kInjectorFailure record per
// death, so sweeps can model degraded injectors deterministically.
TEST(InjectorFailure, KillsRequestedCountAndEmitsTraceRecords) {
  auto world = sim::make_voltrino_world();
  trace::TraceCapture capture;
  world->attach_tracer(&capture.tracer());
  const auto tasks = inject_netoccupy(*world, 0, 4, /*ntasks=*/2, 50e6, 30.0);
  ASSERT_EQ(tasks.size(), 2u);
  schedule_injector_failure(*world, tasks, 5.0, /*kill_count=*/1);
  world->run_until(10.0);

  const auto dead = static_cast<std::size_t>(
      std::count_if(tasks.begin(), tasks.end(),
                    [](const sim::Task* t) { return t->done(); }));
  EXPECT_EQ(dead, 1u);  // exactly one victim; the survivor keeps running

  const trace::TraceFile file = capture.take();
  std::vector<trace::TraceRecord> failures;
  for (const trace::TraceRecord& r : file.records) {
    if (r.kind == trace::RecordKind::kInjectorFailure) failures.push_back(r);
  }
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_DOUBLE_EQ(failures[0].time, 5.0);
  EXPECT_DOUBLE_EQ(failures[0].x, 5.0);  // failure time rides in the payload
  EXPECT_EQ(failures[0].a, 1u);          // one injector task survives
}

TEST(InjectorFailure, DefaultKillsEveryInjectorTask) {
  auto world = sim::make_voltrino_world();
  trace::TraceCapture capture;
  world->attach_tracer(&capture.tracer());
  const auto tasks = inject_netoccupy(*world, 0, 4, /*ntasks=*/2, 50e6, 30.0);
  schedule_injector_failure(*world, tasks, 5.0);  // kill_count=-1: total loss
  world->run_until(10.0);

  for (const sim::Task* task : tasks) EXPECT_TRUE(task->done());
  const trace::TraceFile file = capture.take();
  std::size_t failures = 0;
  std::uint64_t last_survivors = 99;
  for (const trace::TraceRecord& r : file.records) {
    if (r.kind != trace::RecordKind::kInjectorFailure) continue;
    ++failures;
    last_survivors = r.a;
  }
  EXPECT_EQ(failures, tasks.size());
  EXPECT_EQ(last_survivors, 0u);  // the final record reports a wipeout
}

TEST(InjectorFailure, SkipsTasksAlreadyFinished) {
  auto world = sim::make_voltrino_world();
  trace::TraceCapture capture;
  world->attach_tracer(&capture.tracer());
  // The injector's own deadline (2 s) fires before the failure (5 s): the
  // failure event must not double-kill or trace the finished tasks.
  const auto tasks = inject_netoccupy(*world, 0, 4, /*ntasks=*/2, 50e6, 2.0);
  schedule_injector_failure(*world, tasks, 5.0);
  world->run_until(10.0);

  const trace::TraceFile file = capture.take();
  for (const trace::TraceRecord& r : file.records)
    EXPECT_NE(r.kind, trace::RecordKind::kInjectorFailure);
}

TEST(InjectorFailure, RejectsTimesInThePast) {
  auto world = sim::make_voltrino_world();
  const auto tasks = inject_netoccupy(*world, 0, 4, 1, 50e6, 30.0);
  world->run_until(2.0);
  EXPECT_THROW(schedule_injector_failure(*world, tasks, 1.0),
               hpas::InvariantError);
}

}  // namespace
}  // namespace hpas::simanom
