// ShutdownController: signals delivered to the process must reach
// subscribed callbacks (on a normal thread, not in signal context) and
// the graceful/hard escalation must follow the two-signal contract.
#include "common/shutdown.hpp"

#include <gtest/gtest.h>

#include <csignal>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

namespace {

using hpas::ShutdownController;

bool wait_until(const std::function<bool()>& cond, double timeout_s = 5.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

TEST(ShutdownController, SignalsReachSubscribersWithEscalation) {
  auto& controller = ShutdownController::instance();
  controller.install();
  controller.install();  // idempotent
  controller.reset_counts_for_tests();

  std::atomic<int> last_count{0};
  std::atomic<int> calls{0};
  const auto id = controller.subscribe([&](int count) {
    last_count.store(count);
    calls.fetch_add(1);
  });

  EXPECT_FALSE(controller.requested());
  ASSERT_EQ(std::raise(SIGTERM), 0);
  ASSERT_TRUE(wait_until([&] { return calls.load() >= 1; }));
  EXPECT_EQ(last_count.load(), 1);
  EXPECT_TRUE(controller.requested());
  EXPECT_FALSE(controller.hard_requested());
  EXPECT_EQ(controller.last_signal(), SIGTERM);

  ASSERT_EQ(std::raise(SIGINT), 0);
  ASSERT_TRUE(wait_until([&] { return calls.load() >= 2; }));
  EXPECT_EQ(last_count.load(), 2);
  EXPECT_TRUE(controller.hard_requested());
  EXPECT_EQ(controller.last_signal(), SIGINT);

  controller.unsubscribe(id);
  controller.reset_counts_for_tests();
}

std::size_t open_fd_count() {
  std::size_t count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd"))
    ++count;
  return count;
}

// A daemon re-installing around restarts must not leak the self-pipe fd
// pair or the watcher thread: teardown() joins and closes, install()
// starts fresh, and signal delivery still works on the latest instance.
TEST(ShutdownController, RepeatedInstallTeardownDoesNotLeak) {
  auto& controller = ShutdownController::instance();
  controller.teardown();  // idempotent from any prior state
  controller.teardown();
  EXPECT_FALSE(controller.installed());

  const std::size_t fds_before = open_fd_count();
  for (int cycle = 0; cycle < 25; ++cycle) {
    controller.install();
    EXPECT_TRUE(controller.installed());
    controller.teardown();
    EXPECT_FALSE(controller.installed());
  }
  // The directory_iterator itself holds one fd while counting; comparing
  // two identical measurements cancels it out.
  EXPECT_EQ(open_fd_count(), fds_before);

  // The final re-install must deliver signals like the first one did.
  controller.install();
  controller.reset_counts_for_tests();
  std::atomic<int> calls{0};
  const auto id = controller.subscribe([&](int) { calls.fetch_add(1); });
  ASSERT_EQ(std::raise(SIGTERM), 0);
  ASSERT_TRUE(wait_until([&] { return calls.load() >= 1; }));
  EXPECT_TRUE(controller.requested());
  controller.unsubscribe(id);
  controller.reset_counts_for_tests();
}

TEST(ShutdownController, UnsubscribedCallbackIsNotInvoked) {
  auto& controller = ShutdownController::instance();
  controller.install();
  controller.reset_counts_for_tests();

  std::atomic<int> dead_calls{0};
  std::atomic<int> live_calls{0};
  const auto dead = controller.subscribe([&](int) { dead_calls.fetch_add(1); });
  controller.unsubscribe(dead);
  const auto live = controller.subscribe([&](int) { live_calls.fetch_add(1); });

  ASSERT_EQ(std::raise(SIGTERM), 0);
  ASSERT_TRUE(wait_until([&] { return live_calls.load() >= 1; }));
  EXPECT_EQ(dead_calls.load(), 0);

  controller.unsubscribe(live);
  controller.reset_counts_for_tests();
}

}  // namespace
