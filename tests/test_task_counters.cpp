// Tests for per-task resource attribution (TaskCounters) and the
// conservation invariant between task- and node-level accounting.
#include <gtest/gtest.h>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace hpas::sim {
namespace {

TEST(TaskCounters, ComputeTaskAccountsItsOwnWork) {
  auto world = make_voltrino_world();
  TaskProfile profile;
  profile.ips_peak = 2.0e9;
  profile.m1_base = 0; profile.m1_max = 0;
  profile.m2_base = 0; profile.m2_max = 0;
  profile.m3_base = 0; profile.m3_max = 0;
  Task* task = world->spawn_task("worker", 0, 0, profile,
                                 Phase::compute(4.0e9),
                                 [](Task&) { return Phase::done(); });
  world->run_until(10.0);
  EXPECT_NEAR(task->counters().instructions, 4.0e9, 1e4);
  EXPECT_NEAR(task->counters().cpu_seconds, 2.0, 1e-6);
}

TEST(TaskCounters, MessageBytesAttributed) {
  auto world = make_voltrino_world();
  Task* task = world->spawn_task("sender", 0, 0, TaskProfile{},
                                 Phase::message(1, 3.0e9),
                                 [](Task&) { return Phase::done(); });
  world->run_until(10.0);
  EXPECT_NEAR(task->counters().bytes_sent, 3.0e9, 1e3);
}

TEST(TaskCounters, IoWorkAttributed) {
  auto world = make_chameleon_world();
  Task* task = world->spawn_task("writer", 0, 0, TaskProfile{},
                                 Phase::io(IoKind::kWrite, 100e6),
                                 [](Task&) { return Phase::done(); });
  world->run_until(10.0);
  EXPECT_NEAR(task->counters().io_work, 100e6, 1e3);
}

TEST(TaskCounters, NodeCountersEqualSumOfResidents) {
  // Conservation: with every task on one node, node counters must equal
  // the sum of per-task counters.
  auto world = make_voltrino_world();
  apps::AppSpec spec = apps::app_by_name("kripke");
  spec.iterations = 10;
  apps::BspApp app(*world, spec, {.nodes = {0}, .ranks_per_node = 4,
                                  .first_core = 0});
  simanom::inject_cpuoccupy(*world, 0, 4, 80.0, 5.0);
  app.run_to_completion();

  double task_instr = 0.0, task_l3 = 0.0;
  for (const Task* task : world->tasks()) {
    task_instr += task->counters().instructions;
    task_l3 += task->counters().l3_misses;
  }
  // Done tasks are dropped from tasks(); re-sum over the app's ranks and
  // account for the (finished) anomaly via the node-task gap instead:
  // conservation is within the live set plus the finished anomaly's
  // contribution, so check the relationship as an upper/lower bound.
  const auto& node = world->node(0).counters();
  EXPECT_GE(node.instructions + 1e3, task_instr);
  EXPECT_GT(task_instr, 0.9 * node.instructions - 2.3e9 * 5.0);
  EXPECT_GE(node.l3_misses + 1.0, task_l3);
}

TEST(TaskCounters, VictimAttributionSeparatesAnomalyFromApp) {
  // The Fig. 3 use case: the victim's own MPKI, not the node aggregate.
  auto world = make_voltrino_world();
  apps::AppSpec spec = apps::app_by_name("miniGhost");
  spec.iterations = 30;
  apps::BspApp app(*world, spec, {.nodes = {0}, .ranks_per_node = 1,
                                  .first_core = 0});
  simanom::inject_cachecopy(*world, 0, 0, simanom::SimCacheLevel::kL3, 1.0,
                            1e6);
  app.run_to_completion();

  const Task* rank = app.rank_tasks()[0];
  const double rank_mpki = rank->counters().l3_misses /
                           rank->counters().instructions * 1000.0;
  // Victim MPKI under L3 cachecopy (cf. fig03): well above its solo ~7.
  EXPECT_GT(rank_mpki, 12.0);
  // And the rank's own instruction count stays attributable (not the
  // node total, which includes the anomaly's instructions).
  EXPECT_LT(rank->counters().instructions,
            world->node(0).counters().instructions);
}

}  // namespace
}  // namespace hpas::sim
