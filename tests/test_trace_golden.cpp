// Golden-trace differential regression (bench/fig05's memory-leak
// timeline, shortened).
//
// Pins the byte-stable text export of one memleak scenario's full trace
// under tests/golden/; regenerate deliberately with HPAS_UPDATE_GOLDEN=1
// after an intentional model change. The perturbation test then shows
// what the pin buys: changing one injector knob is localized by
// trace_diff to the exact first divergent event, not just "some bytes
// changed".
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "metrics/trace_counters.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"
#include "trace/export.hpp"
#include "trace/replay.hpp"
#include "trace/tracer.hpp"

namespace {

/// The fig05 scenario, shortened to keep the golden file small: a
/// 20 MB/s memory leak on node 0 for 20 simulated seconds, observed for
/// 30 (the leak's release at expiry is part of the pinned stream).
hpas::trace::TraceFile run_memleak_scenario(double chunk_interval_s) {
  auto world = hpas::sim::make_voltrino_world();
  hpas::trace::TraceCapture capture;
  world->attach_tracer(&capture.tracer());
  world->enable_monitoring(1.0);
  hpas::simanom::inject_memleak(*world, /*node=*/0, /*core=*/0,
                                /*chunk_bytes=*/20.0 * 1024 * 1024,
                                chunk_interval_s,
                                /*duration_s=*/20.0);
  world->run_until(30.0);
  return capture.take();
}

std::string text_form(const hpas::trace::TraceFile& file) {
  std::ostringstream out;
  hpas::trace::write_text(out, file);
  return out.str();
}

TEST(TraceGolden, Fig05MemleakTraceMatchesGoldenFile) {
  const std::string path =
      std::string(HPAS_GOLDEN_DIR) + "/fig05_memleak_trace.txt";
  const std::string actual = text_form(run_memleak_scenario(1.0));

  if (std::getenv("HPAS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden trace updated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << path
                            << " (regenerate with HPAS_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "the memleak trace drifted from tests/golden/fig05_memleak_trace"
         ".txt; if the model change is intentional, regenerate with"
         " HPAS_UPDATE_GOLDEN=1 and commit the diff";
}

TEST(TraceGolden, CountersCoverEveryInstrumentedSubsystem) {
  // Trace-derived counters: the memleak scenario must exercise the
  // engine, task, rate, memory, anomaly and monitoring channels -- a
  // count dropping to zero means a subsystem silently stopped emitting.
  const hpas::trace::TraceFile file = run_memleak_scenario(1.0);
  const auto counters = hpas::metrics::count_trace(file);
  EXPECT_EQ(counters.total, file.records.size());
  EXPECT_EQ(counters.dropped, 0u);
  using hpas::trace::RecordKind;
  // (kTaskKill is absent by design: memleak expires through its own
  // phase controller rather than being killed.)
  for (const RecordKind kind :
       {RecordKind::kEventScheduled, RecordKind::kEventFired,
        RecordKind::kTaskSpawn, RecordKind::kPhaseTransition,
        RecordKind::kRateRecompute, RecordKind::kNodeRates,
        RecordKind::kTaskRate, RecordKind::kMemoryAlloc,
        RecordKind::kAnomalyStart, RecordKind::kAnomalyStop,
        RecordKind::kSample}) {
    EXPECT_GT(counters.by_kind[static_cast<std::size_t>(kind)], 0u)
        << hpas::trace::record_kind_name(kind);
  }

  const hpas::Json doc = hpas::metrics::trace_counters_json(counters);
  EXPECT_EQ(doc.number_or("total", 0.0),
            static_cast<double>(counters.total));
  const auto* by_kind = doc.find("by_kind");
  ASSERT_NE(by_kind, nullptr);
  EXPECT_GT(by_kind->number_or("phase_transition", 0.0), 0.0);
  EXPECT_GT(by_kind->number_or("anomaly_start", 0.0), 0.0);
}

TEST(TraceGolden, ReplayIsBitIdentical) {
  EXPECT_EQ(text_form(run_memleak_scenario(1.0)),
            text_form(run_memleak_scenario(1.0)));
}

TEST(TraceGolden, PerturbationIsLocalizedToFirstDivergentEvent) {
  const hpas::trace::TraceFile recorded = run_memleak_scenario(1.0);
  const hpas::trace::TraceFile perturbed = run_memleak_scenario(1.25);

  const auto divergence = hpas::trace::diff_traces(recorded, perturbed);
  ASSERT_TRUE(divergence.diverged);

  // Every record before the reported seq agrees: the perturbation really
  // is localized, not merely detected.
  ASSERT_LT(divergence.seq, recorded.records.size());
  for (std::uint64_t i = 0; i < divergence.seq; ++i) {
    EXPECT_TRUE(hpas::trace::bitwise_equal(
        recorded.records[static_cast<std::size_t>(i)],
        perturbed.records[static_cast<std::size_t>(i)]))
        << "record " << i << " differs before the reported divergence";
  }

  // The report names the exact event and renders both sides; the leak
  // interval shows up as the divergent quantity (1 vs 1.25).
  EXPECT_NE(divergence.description.find("event #"), std::string::npos)
      << divergence.description;
  EXPECT_NE(divergence.description.find("1.25"), std::string::npos)
      << divergence.description;
}

}  // namespace
