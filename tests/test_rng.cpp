// Tests for the deterministic RNG (common/rng.hpp).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace hpas {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(0);
  SplitMix64 b(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), InvariantError);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(42);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values appear in 2000 draws
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(42);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(9);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  constexpr int kN = 100000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  constexpr int kN = 100000;
  double sum = 0;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), InvariantError);
  EXPECT_THROW(rng.exponential(-1.0), InvariantError);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(19);
  Rng child = parent.split();
  // The child stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, FillBytesDeterministicAndCoversTail) {
  Rng a(23), b(23);
  std::vector<unsigned char> buf_a(37, 0), buf_b(37, 0);  // non-multiple of 8
  a.fill_bytes(buf_a.data(), buf_a.size());
  b.fill_bytes(buf_b.data(), buf_b.size());
  EXPECT_EQ(buf_a, buf_b);
  // All-zero tail would indicate the partial word was skipped.
  bool tail_nonzero = false;
  for (std::size_t i = 32; i < buf_a.size(); ++i)
    tail_nonzero = tail_nonzero || buf_a[i] != 0;
  EXPECT_TRUE(tail_nonzero);
}

/// Property sweep: next_below stays unbiased-ish across bounds (chi-square
/// style loose check on small bounds).
class RngBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundProperty, RoughlyUniform) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 2654435761ULL + 1);
  std::vector<int> counts(bound, 0);
  const int draws_per_bucket = 1000;
  const int total = static_cast<int>(bound) * draws_per_bucket;
  for (int i = 0; i < total; ++i) ++counts[rng.next_below(bound)];
  for (const int c : counts) {
    EXPECT_GT(c, draws_per_bucket * 8 / 10);
    EXPECT_LT(c, draws_per_bucket * 12 / 10);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundProperty,
                         ::testing::Values(2, 3, 5, 7, 16, 33));

}  // namespace
}  // namespace hpas
