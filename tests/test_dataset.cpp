// Streaming dataset factory: extractor equality, shard round-trips,
// thread-count/resume byte-identity, corruption detection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "dataset/factory.hpp"
#include "dataset/shards.hpp"
#include "dataset/streaming.hpp"
#include "metrics/features.hpp"
#include "ml/diagnosis.hpp"
#include "runner/grid.hpp"
#include "sim/world.hpp"

namespace {

namespace fs = std::filesystem;
using hpas::dataset::DatasetMeta;
using hpas::dataset::DatasetWriter;
using hpas::dataset::DatasetWriterOptions;
using hpas::dataset::StreamingExtractorConfig;
using hpas::dataset::StreamingFeatureExtractor;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / ("hpas_test_dataset_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

/// All dataset artifacts except the journal (an execution log, not an
/// output: it legitimately differs across thread counts and resume).
std::vector<std::string> artifact_names(const fs::path& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name != "dataset.journal") names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void expect_identical_datasets(const fs::path& a, const fs::path& b) {
  const auto names_a = artifact_names(a);
  ASSERT_EQ(names_a, artifact_names(b));
  for (const auto& name : names_a) {
    EXPECT_EQ(slurp(a / name), slurp(b / name)) << name;
  }
}

StreamingExtractorConfig tiny_config(double t0, double t1, bool gauge) {
  StreamingExtractorConfig config;
  config.metrics = {{"m", "test"}};
  config.gauge = {gauge ? char{1} : char{0}};
  config.window_t0 = t0;
  config.window_t1 = t1;
  return config;
}

// --- StreamingFeatureExtractor unit behavior -------------------------

TEST(StreamingExtractor, GaugeWindowMatchesBatchSeries) {
  StreamingFeatureExtractor ex(tiny_config(2.0, 6.0, /*gauge=*/true));
  const std::vector<double> values = {5.0, 3.0, 8.0, 1.0, 4.0, 9.0, 2.0};
  for (std::size_t i = 0; i < values.size(); ++i) {
    ex.on_sample({"m", "test"}, static_cast<double>(i), values[i]);
  }
  // Window [2, 6): samples at t = 2, 3, 4, 5.
  const std::vector<double> in_window = {8.0, 1.0, 4.0, 9.0};
  const auto expected = hpas::metrics::extract_series_features(in_window);
  const auto streamed = ex.finalize(nullptr);
  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(streamed[i], expected[i]) << "feature " << i;
  }
  EXPECT_EQ(ex.samples_in_window(), 4u);
  EXPECT_EQ(ex.samples_out_of_window(), 3u);
}

TEST(StreamingExtractor, CounterFirstDifferences) {
  StreamingFeatureExtractor ex(tiny_config(0.5, 10.0, /*gauge=*/false));
  for (const auto& [t, v] : {std::pair{1.0, 10.0}, std::pair{2.0, 15.0},
                             std::pair{3.0, 21.0}, std::pair{4.0, 21.0}}) {
    ex.on_sample({"m", "test"}, t, v);
  }
  const std::vector<double> diffs = {5.0, 6.0, 0.0};
  const auto expected = hpas::metrics::extract_series_features(diffs);
  EXPECT_EQ(ex.finalize(nullptr), expected);
}

TEST(StreamingExtractor, SingleCounterSampleStaysRaw) {
  StreamingFeatureExtractor ex(tiny_config(0.5, 10.0, /*gauge=*/false));
  ex.on_sample({"m", "test"}, 1.0, 42.0);
  const std::vector<double> raw = {42.0};
  EXPECT_EQ(ex.finalize(nullptr), hpas::metrics::extract_series_features(raw));
}

TEST(StreamingExtractor, ResetReproducesAndKeepsBufferBounded) {
  StreamingFeatureExtractor ex(tiny_config(0.5, 100.5, /*gauge=*/true));
  std::vector<double> first;
  for (int round = 0; round < 5; ++round) {
    hpas::Rng rng(7);  // same stream every round
    for (int t = 1; t <= 100; ++t) {
      ex.on_sample({"m", "test"}, t, rng.uniform(0.0, 1.0));
    }
    const auto features = ex.finalize(nullptr);
    if (round == 0) {
      first = features;
    } else {
      EXPECT_EQ(features, first) << "round " << round;
    }
    ex.reset();
  }
  // One metric, 100-sample window: the peak buffer must be the window,
  // not 5 rounds of history.
  EXPECT_LE(ex.peak_buffered_values(), 100u);
}

TEST(StreamingExtractor, IgnoresUnknownMetricsCheaply) {
  StreamingFeatureExtractor ex(tiny_config(0.5, 10.0, /*gauge=*/true));
  for (int t = 1; t <= 10; ++t) {
    ex.on_sample({"other", "test"}, t, 1.0);
  }
  EXPECT_EQ(ex.samples_other_metrics(), 10u);
  EXPECT_EQ(ex.peak_buffered_values(), 0u);
}

// --- Streamed vs batch bit-equality on the fig09 plan ----------------

// The whole diagnosis sweep shape (every class x every proxy app), one
// variant each to keep the battery fast; the full-variant sweep is the
// same code path run more times (microbench_dataset spot-checks it).
TEST(StreamingEquality, Fig09PlanBitEqual) {
  hpas::ml::DiagnosisDataOptions options;
  options.variants_per_app = 1;
  options.run_duration_s = 20.0;
  options.warmup_s = 3.0;

  StreamingExtractorConfig config;
  config.metrics = hpas::ml::diagnosis_feature_metrics(
      options.include_bandwidth_metrics);
  for (const auto& id : config.metrics) {
    config.gauge.push_back(hpas::ml::diagnosis_metric_is_gauge(id) ? 1 : 0);
  }
  config.window_t0 = options.warmup_s;
  config.window_t1 = options.run_duration_s + 0.5;
  config.noise = options.measurement_noise;

  const auto plans = hpas::ml::plan_diagnosis_runs(options);
  ASSERT_GT(plans.size(), 0u);
  StreamingFeatureExtractor extractor(config);
  for (const auto& plan : plans) {
    const auto batch = hpas::ml::run_diagnosis_scenario(plan, options);

    auto scenario = hpas::ml::begin_diagnosis_scenario(
        plan, options, &extractor, /*store_samples=*/false);
    scenario.world->run_until(options.run_duration_s);
    hpas::Rng noise_rng = plan.noise_rng;
    const auto streamed = extractor.finalize(&noise_rng);
    extractor.reset();

    ASSERT_EQ(streamed.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(std::memcmp(&streamed[i], &batch[i], sizeof(double)), 0)
          << plan.app << "/" << plan.anomaly << " feature " << i;
    }
  }
}

// --- Shard layout helpers --------------------------------------------

TEST(ShardLayout, RowAssignmentAndCounts) {
  EXPECT_EQ(hpas::dataset::shard_of_row(0, 3), 0u);
  EXPECT_EQ(hpas::dataset::shard_of_row(5, 3), 2u);
  for (const std::uint64_t rows : {0ull, 1ull, 7ull, 24ull, 1001ull}) {
    for (const std::uint32_t shards : {1u, 2u, 3u, 8u}) {
      std::uint64_t total = 0;
      for (std::uint32_t s = 0; s < shards; ++s) {
        total += hpas::dataset::shard_row_count(rows, shards, s);
      }
      EXPECT_EQ(total, rows) << rows << " rows over " << shards;
    }
  }
  EXPECT_EQ(hpas::dataset::shard_row_count(7, 3, 0), 3u);
  EXPECT_EQ(hpas::dataset::shard_row_count(7, 3, 1), 2u);
  EXPECT_EQ(hpas::dataset::shard_row_count(7, 3, 2), 2u);
}

// --- DatasetWriter round-trip ----------------------------------------

DatasetMeta tiny_meta(std::uint64_t rows, std::uint32_t shards) {
  DatasetMeta meta;
  meta.plan_digest = 0xABCDEF0123456789ull;
  meta.rows = rows;
  meta.num_features = 3;
  meta.shards = shards;
  meta.class_names = {"none", "anom"};
  meta.feature_names = {"f0", "f1", "f2"};
  return meta;
}

std::vector<double> row_features(std::uint64_t row) {
  return {static_cast<double>(row), 0.5 * static_cast<double>(row) - 3.0,
          1.0 / (1.0 + static_cast<double>(row))};
}

TEST(DatasetWriter, RoundTripVerifies) {
  const fs::path dir = fresh_dir("roundtrip");
  DatasetWriter writer(tiny_meta(17, 3), {dir.string(), 4, false});
  // Arbitrary completion order; bytes must land in plan order anyway.
  const std::uint64_t order[] = {3, 0, 1, 2, 8, 5, 4, 6, 7,
                                 16, 12, 9, 10, 11, 13, 15, 14};
  for (const std::uint64_t row : order) {
    const auto f = row_features(row);
    writer.append(row, static_cast<int>(row % 2), f);
  }
  const std::string manifest = writer.finish(/*write_csv=*/true);
  EXPECT_TRUE(fs::exists(manifest));
  EXPECT_TRUE(fs::exists(dir / "dataset.csv"));

  const auto report = hpas::dataset::verify_dataset(dir.string());
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);

  // The CSV has one header plus one line per row, in plan order.
  std::ifstream csv(dir / "dataset.csv");
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line.rfind("row,label,", 0), 0u);
  std::uint64_t expect_row = 0;
  while (std::getline(csv, line)) {
    EXPECT_EQ(line.rfind(std::to_string(expect_row) + ",", 0), 0u) << line;
    ++expect_row;
  }
  EXPECT_EQ(expect_row, 17u);
  fs::remove_all(dir);
}

TEST(DatasetWriter, DetectsCorruptionAndTruncation) {
  const fs::path dir = fresh_dir("corrupt");
  DatasetWriter writer(tiny_meta(10, 2), {dir.string(), 4, false});
  for (std::uint64_t row = 0; row < 10; ++row) {
    const auto f = row_features(row);
    writer.append(row, 0, f);
  }
  writer.finish(false);
  ASSERT_TRUE(hpas::dataset::verify_dataset(dir.string()).ok);

  // Flip one payload byte in shard 1.
  const fs::path shard = dir / hpas::dataset::shard_file_name(1);
  {
    std::fstream f(shard, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(40);
    f.write(&byte, 1);
  }
  const auto corrupt = hpas::dataset::verify_dataset(dir.string());
  EXPECT_FALSE(corrupt.ok);
  ASSERT_FALSE(corrupt.errors.empty());

  // Restore, then truncate the other shard mid-frame.
  {
    std::fstream f(shard, std::ios::binary | std::ios::in | std::ios::out);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(40);
    f.write(&byte, 1);
  }
  ASSERT_TRUE(hpas::dataset::verify_dataset(dir.string()).ok);
  const fs::path other = dir / hpas::dataset::shard_file_name(0);
  fs::resize_file(other, fs::file_size(other) - 7);
  EXPECT_FALSE(hpas::dataset::verify_dataset(dir.string()).ok);
  fs::remove_all(dir);
}

TEST(DatasetWriter, RejectsBadAppends) {
  const fs::path dir = fresh_dir("badappend");
  DatasetWriter writer(tiny_meta(4, 2), {dir.string(), 4, false});
  const std::vector<double> short_row = {1.0};
  EXPECT_THROW(writer.append(0, 0, short_row), hpas::InvariantError);
  const auto good = row_features(0);
  EXPECT_THROW(writer.append(99, 0, good), hpas::InvariantError);
  EXPECT_THROW(writer.append(0, 7, good), hpas::InvariantError);
  writer.abandon();
  fs::remove_all(dir);
}

// --- Factory: thread-count and resume byte-identity ------------------

hpas::dataset::DatasetPlan smoke_plan(std::uint64_t rows) {
  hpas::Json doc = hpas::Json::object();
  doc.set("name", "test_dataset");
  doc.set("system", "voltrino");
  doc.set("seed", std::uint64_t{7});
  hpas::Json apps = hpas::Json::array();
  apps.push_back("CoMD");
  apps.push_back("milc");
  doc.set("apps", std::move(apps));
  hpas::Json anomalies = hpas::Json::array();
  anomalies.push_back("none");
  anomalies.push_back("cpuoccupy");
  anomalies.push_back("membw");
  doc.set("anomalies", std::move(anomalies));
  hpas::Json intensities = hpas::Json::array();
  intensities.push_back(0.75);
  doc.set("intensities", std::move(intensities));
  doc.set("repeats", 1);
  doc.set("duration_s", 8.0);
  doc.set("sample_period_s", 1.0);
  doc.set("run_to_completion", false);
  return hpas::dataset::plan_from_grid(hpas::runner::expand_grid(doc), rows,
                                       /*warmup_s=*/2.0, /*noise=*/0.5,
                                       /*include_bandwidth=*/false);
}

hpas::dataset::DatasetFactoryResult run_factory(
    const hpas::dataset::DatasetPlan& plan, const fs::path& dir, int threads,
    bool resume = false, const hpas::CancelToken* graceful = nullptr) {
  hpas::dataset::DatasetFactoryOptions options;
  options.out_dir = dir.string();
  options.shards = 3;
  options.threads = threads;
  options.checkpoint_rows = 4;
  options.resume = resume;
  options.write_csv = true;
  options.graceful = graceful;
  return hpas::dataset::run_dataset_factory(plan, options);
}

TEST(DatasetFactory, ByteIdenticalAcrossThreadCounts) {
  const auto plan = smoke_plan(24);
  const fs::path d1 = fresh_dir("threads1");
  const fs::path d2 = fresh_dir("threads2");
  const fs::path d5 = fresh_dir("threads5");
  const auto r1 = run_factory(plan, d1, 1);
  const auto r2 = run_factory(plan, d2, 2);
  const auto r5 = run_factory(plan, d5, 5);
  EXPECT_TRUE(r1.complete && r2.complete && r5.complete);
  EXPECT_EQ(r1.rows_executed, 24u);
  expect_identical_datasets(d1, d2);
  expect_identical_datasets(d1, d5);
  EXPECT_TRUE(hpas::dataset::verify_dataset(d1.string()).ok);
  fs::remove_all(d1);
  fs::remove_all(d2);
  fs::remove_all(d5);
}

TEST(DatasetFactory, ResumeCompletesByteIdentically) {
  const auto plan = smoke_plan(24);
  const fs::path golden = fresh_dir("resume_golden");
  ASSERT_TRUE(run_factory(plan, golden, 2).complete);

  // Interrupt a fresh run partway via the graceful drain token, then
  // resume. The cut point races the workers on purpose: wherever it
  // lands (including "nothing executed yet"), the resumed bytes must
  // match the uninterrupted golden run.
  const fs::path dir = fresh_dir("resume_cut");
  hpas::CancelToken drain;
  std::thread cutter([&drain] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    drain.cancel();
  });
  const auto cut = run_factory(plan, dir, 2, false, &drain);
  cutter.join();

  const auto resumed = run_factory(plan, dir, 2, /*resume=*/true);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.rows_executed + resumed.rows_resumed, 24u);
  expect_identical_datasets(golden, dir);
  EXPECT_TRUE(hpas::dataset::verify_dataset(dir.string()).ok);
  fs::remove_all(golden);
  fs::remove_all(dir);
}

TEST(DatasetFactory, ResumeRejectsChangedPlan) {
  const auto plan = smoke_plan(12);
  const fs::path dir = fresh_dir("resume_reject");
  ASSERT_TRUE(run_factory(plan, dir, 2).complete);
  const auto other = smoke_plan(13);  // different digest
  EXPECT_THROW(run_factory(other, dir, 2, /*resume=*/true),
               hpas::ConfigError);
  fs::remove_all(dir);
}

TEST(DatasetFactory, ManifestCountsAndLabels) {
  const auto plan = smoke_plan(12);
  const fs::path dir = fresh_dir("manifest");
  const auto result = run_factory(plan, dir, 2);
  ASSERT_TRUE(result.complete);

  std::ifstream in(result.manifest_path);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const hpas::Json manifest = hpas::Json::parse(text);
  EXPECT_EQ(manifest.find("format")->as_string(), "hpas-dataset-v1");
  EXPECT_EQ(static_cast<std::uint64_t>(
                manifest.find("rows")->as_number()), 12u);
  EXPECT_EQ(static_cast<std::uint32_t>(
                manifest.find("shards")->as_number()), 3u);
  const auto& shard_files = manifest.find("shard_files")->as_array();
  ASSERT_EQ(shard_files.size(), 3u);
  std::uint64_t rows = 0;
  for (const auto& entry : shard_files) {
    rows += static_cast<std::uint64_t>(entry.find("rows")->as_number());
  }
  EXPECT_EQ(rows, 12u);
  const auto& label_counts = manifest.find("label_counts")->as_array();
  std::uint64_t labeled = 0;
  for (const auto& count : label_counts) {
    labeled += static_cast<std::uint64_t>(count.as_number());
  }
  EXPECT_EQ(labeled, 12u);
  ASSERT_NE(manifest.find("feature_crcs"), nullptr);
  EXPECT_EQ(manifest.find("feature_crcs")->as_array().size(),
            plan.feature_names.size());
  fs::remove_all(dir);
}

}  // namespace
