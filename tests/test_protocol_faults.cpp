// Frame-codec edge cases driven through the fault layer: short reads and
// writes mid-header and mid-body, EINTR storms, oversized-length
// rejection, peer resets mid-frame, the idle-vs-stalled deadline
// semantics, and the stale-socket probe -- all without leaking a
// descriptor.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/json.hpp"
#include "faultline/faultline.hpp"
#include "server/protocol.hpp"

namespace {

namespace fl = hpas::faultline;
using hpas::ConfigError;
using hpas::SystemError;

std::size_t open_fd_count() {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

/// A connected AF_UNIX socket pair; both ends closed at scope exit.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

class ProtocolFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fl::disarm(); }
  void TearDown() override { fl::disarm(); }
};

TEST_F(ProtocolFaultTest, RoundTripSurvivesShortWritesAndShortReads) {
  SocketPair pair;
  // Every socket write lands at most 3 bytes and every read delivers at
  // most 2: the 4-byte header and the body are both torn into fragments
  // the retry loops must reassemble.
  fl::FaultSchedule schedule;
  schedule.rules.push_back({.domain = fl::Domain::kSocket,
                            .op = fl::Op::kWrite,
                            .kind = fl::FaultKind::kShortWrite,
                            .bytes = 3,
                            .every = 1});
  schedule.rules.push_back({.domain = fl::Domain::kSocket,
                            .op = fl::Op::kRead,
                            .kind = fl::FaultKind::kShortRead,
                            .bytes = 2,
                            .every = 1});
  fl::arm(schedule);

  const std::string payload =
      R"({"op":"submit","id":9,"spec":{"name":"frag"}})";
  hpas::server::write_frame(pair.fds[0], payload);
  std::string got;
  ASSERT_TRUE(hpas::server::read_frame(pair.fds[1], got));
  EXPECT_EQ(got, payload);
  // The fragmentation actually happened: far more calls than the two
  // writes and two reads of the fast path.
  EXPECT_GT(fl::stats().injected, 10u);
}

TEST_F(ProtocolFaultTest, EintrStormIsRetriedOnBothSides) {
  SocketPair pair;
  fl::FaultSchedule schedule;
  schedule.rules.push_back({.domain = fl::Domain::kSocket,
                            .op = fl::Op::kWrite,
                            .kind = fl::FaultKind::kErrno,
                            .err = EINTR,
                            .every = 1,
                            .count = 20});
  schedule.rules.push_back({.domain = fl::Domain::kSocket,
                            .op = fl::Op::kRead,
                            .kind = fl::FaultKind::kErrno,
                            .err = EINTR,
                            .every = 1,
                            .count = 20});
  fl::arm(schedule);

  hpas::server::write_frame(pair.fds[0], "stormy payload");
  std::string got;
  ASSERT_TRUE(hpas::server::read_frame(pair.fds[1], got));
  EXPECT_EQ(got, "stormy payload");
  EXPECT_EQ(fl::stats().injected, 40u);
}

TEST_F(ProtocolFaultTest, ConnectionResetSurfacesAsSystemError) {
  SocketPair pair;
  fl::FaultSchedule schedule;
  schedule.rules.push_back({.domain = fl::Domain::kSocket,
                            .op = fl::Op::kWrite,
                            .kind = fl::FaultKind::kErrno,
                            .err = ECONNRESET,
                            .at = 0});
  fl::arm(schedule);
  EXPECT_THROW(hpas::server::write_frame(pair.fds[0], "never lands"),
               SystemError);
}

TEST_F(ProtocolFaultTest, OversizedLengthPrefixIsRejectedNotAllocated) {
  SocketPair pair;
  // A hostile 0xffffffff length prefix, written raw.
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(pair.fds[0], prefix, sizeof prefix, 0),
            static_cast<ssize_t>(sizeof prefix));
  std::string payload;
  EXPECT_THROW(hpas::server::read_frame(pair.fds[1], payload), SystemError);
}

TEST_F(ProtocolFaultTest, OversizedPayloadIsRefusedBeforeAnyWrite) {
  SocketPair pair;
  const std::string huge(hpas::server::kMaxFramePayload + 1, 'x');
  EXPECT_THROW(hpas::server::write_frame(pair.fds[0], huge), SystemError);
}

TEST_F(ProtocolFaultTest, PeerClosingMidHeaderThrows) {
  SocketPair pair;
  const unsigned char half_header[2] = {0x10, 0x00};
  ASSERT_EQ(::send(pair.fds[0], half_header, 2, 0), 2);
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  std::string payload;
  EXPECT_THROW(hpas::server::read_frame(pair.fds[1], payload), SystemError);
}

TEST_F(ProtocolFaultTest, PeerClosingMidBodyThrows) {
  SocketPair pair;
  // Announce 16 bytes, deliver 5, vanish.
  const unsigned char header[4] = {0x10, 0x00, 0x00, 0x00};
  ASSERT_EQ(::send(pair.fds[0], header, 4, 0), 4);
  ASSERT_EQ(::send(pair.fds[0], "hello", 5, 0), 5);
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  std::string payload;
  EXPECT_THROW(hpas::server::read_frame(pair.fds[1], payload), SystemError);
}

TEST_F(ProtocolFaultTest, CleanEofBetweenFramesIsNotAnError) {
  SocketPair pair;
  hpas::server::write_frame(pair.fds[0], "last frame");
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  std::string payload;
  ASSERT_TRUE(hpas::server::read_frame(pair.fds[1], payload));
  EXPECT_EQ(payload, "last frame");
  EXPECT_FALSE(hpas::server::read_frame(pair.fds[1], payload));
}

TEST_F(ProtocolFaultTest, StalledPeerMidFrameTripsTheReadDeadline) {
  SocketPair pair;
  hpas::server::set_io_deadline(pair.fds[1], 0.05);
  // Half a header, then silence: a slowloris. The deadline must fire.
  const unsigned char half_header[2] = {0x08, 0x00};
  ASSERT_EQ(::send(pair.fds[0], half_header, 2, 0), 2);
  std::string payload;
  EXPECT_THROW(hpas::server::read_frame(pair.fds[1], payload), SystemError);
}

TEST_F(ProtocolFaultTest, IdlePeerAtFrameBoundarySurvivesTheDeadline) {
  SocketPair pair;
  hpas::server::set_io_deadline(pair.fds[1], 0.05);
  // The writer stays quiet for three deadline periods, then sends a
  // whole frame: timeouts before byte 0 are idleness, not a stall.
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    hpas::server::write_frame(pair.fds[0], "patience pays");
  });
  std::string payload;
  ASSERT_TRUE(hpas::server::read_frame(pair.fds[1], payload));
  EXPECT_EQ(payload, "patience pays");
  writer.join();
}

TEST_F(ProtocolFaultTest, UndrainedPeerTripsTheWriteDeadline) {
  SocketPair pair;
  const int tiny = 1;
  ::setsockopt(pair.fds[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny);
  hpas::server::set_io_deadline(pair.fds[0], 0.05);
  // A frame far larger than the socket buffers, with nobody reading the
  // other end: the send must block, time out, and throw -- not hang.
  const std::string big(4u << 20, 'b');
  EXPECT_THROW(hpas::server::write_frame(pair.fds[0], big), SystemError);
}

TEST_F(ProtocolFaultTest, StaleSocketProbeAndHelpersLeakNoFds) {
  const auto dir = std::filesystem::temp_directory_path() / "hpas-proto-fd";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "probe.sock").string();

  const std::size_t before = open_fd_count();
  {
    // Missing file: not alive, connect refuses.
    EXPECT_FALSE(hpas::server::unix_socket_alive(path));
    EXPECT_THROW(hpas::server::connect_unix(path), SystemError);

    // Live listener: alive, and a second bind refuses loudly instead of
    // yanking the socket out from under the running daemon.
    int fd = hpas::server::listen_unix(path);
    EXPECT_TRUE(hpas::server::unix_socket_alive(path));
    EXPECT_THROW(hpas::server::listen_unix(path), ConfigError);
    ::close(fd);

    // SIGKILLed-daemon state: the file exists but nobody listens. The
    // probe reports dead and the next bind unlinks and succeeds.
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_FALSE(hpas::server::unix_socket_alive(path));
    fd = hpas::server::listen_unix(path);
    EXPECT_GE(fd, 0);
    ::close(fd);
  }
  EXPECT_EQ(open_fd_count(), before);
  std::filesystem::remove_all(dir);
}

TEST_F(ProtocolFaultTest, FaultedCodecCallsLeakNoFds) {
  const std::size_t before = open_fd_count();
  {
    SocketPair pair;
    fl::FaultSchedule schedule;
    schedule.rules.push_back({.domain = fl::Domain::kSocket,
                              .op = fl::Op::kWrite,
                              .kind = fl::FaultKind::kErrno,
                              .err = EPIPE,
                              .every = 1});
    fl::arm(schedule);
    for (int i = 0; i < 8; ++i)
      EXPECT_THROW(hpas::server::write_frame(pair.fds[0], "doomed"),
                   SystemError);
    fl::disarm();
  }
  EXPECT_EQ(open_fd_count(), before);
}

}  // namespace
