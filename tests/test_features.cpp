// Tests for statistical feature extraction (metrics/features.hpp).
#include "metrics/features.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace hpas::metrics {
namespace {

TEST(Features, StatisticNamesAndCountAgree) {
  EXPECT_EQ(feature_statistic_names().size(), features_per_metric());
  EXPECT_EQ(features_per_metric(), 12u);
}

TEST(Features, EmptySeriesYieldsZeros) {
  const auto f = extract_series_features({});
  ASSERT_EQ(f.size(), features_per_metric());
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Features, KnownSeriesValues) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto f = extract_series_features(xs);
  // Order: mean std min max p05 p25 p50 p75 p95 skew kurt slope.
  EXPECT_DOUBLE_EQ(f[0], 3.0);                       // mean
  EXPECT_NEAR(f[1], std::sqrt(2.5), 1e-12);          // sample std
  EXPECT_DOUBLE_EQ(f[2], 1.0);                       // min
  EXPECT_DOUBLE_EQ(f[3], 5.0);                       // max
  EXPECT_DOUBLE_EQ(f[6], 3.0);                       // median
  EXPECT_NEAR(f[9], 0.0, 1e-12);                     // symmetric -> skew 0
  EXPECT_NEAR(f[11], 1.0, 1e-12);                    // slope
}

TEST(Features, SlopeSeparatesLeakFromPlateau) {
  // The memleak-vs-memeater discriminator (see features.hpp docs).
  std::vector<double> leak, plateau;
  for (int i = 0; i < 60; ++i) {
    leak.push_back(1000.0 + 20.0 * i);
    plateau.push_back(i < 5 ? 1000.0 + 200.0 * i : 2000.0);
  }
  const auto f_leak = extract_series_features(leak);
  const auto f_plateau = extract_series_features(plateau);
  EXPECT_GT(f_leak[11], 3.0 * std::abs(f_plateau[11]));
}

TEST(Features, StoreExtractionAlignsAndNames) {
  MetricStore store;
  for (int t = 0; t < 10; ++t) {
    store.record({"a", "s"}, t, t * 1.0);
    store.record({"b", "s"}, t, 5.0);
  }
  const std::vector<MetricId> ids = {{"a", "s"}, {"b", "s"}, {"missing", "s"}};
  std::vector<std::string> names;
  const auto f = extract_features(store, ids, 0.0, 10.0, &names);
  ASSERT_EQ(f.size(), 3 * features_per_metric());
  ASSERT_EQ(names.size(), f.size());
  EXPECT_EQ(names[0], "a::s#mean");
  EXPECT_EQ(names[features_per_metric()], "b::s#mean");
  // Metric b: constant 5 -> mean 5, std 0.
  EXPECT_DOUBLE_EQ(f[features_per_metric() + 0], 5.0);
  EXPECT_DOUBLE_EQ(f[features_per_metric() + 1], 0.0);
  // Missing metric contributes zeros, keeping vectors aligned.
  for (std::size_t i = 2 * features_per_metric(); i < f.size(); ++i)
    EXPECT_DOUBLE_EQ(f[i], 0.0);
}

TEST(Features, WindowingRespected) {
  MetricStore store;
  for (int t = 0; t < 10; ++t) store.record({"a", "s"}, t, t < 5 ? 0.0 : 100.0);
  const std::vector<MetricId> ids = {{"a", "s"}};
  const auto early = extract_features(store, ids, 0.0, 5.0);
  const auto late = extract_features(store, ids, 5.0, 10.0);
  EXPECT_DOUBLE_EQ(early[0], 0.0);
  EXPECT_DOUBLE_EQ(late[0], 100.0);
}

}  // namespace
}  // namespace hpas::metrics
