// Tests for descriptive statistics (common/stats.hpp).
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpas {
namespace {

TEST(Summarize, KnownSample) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize(std::vector<double>{3.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.skewness, 0.0);
}

TEST(Summarize, ConstantSeriesHasZeroHigherMoments) {
  const std::vector<double> xs(10, 4.2);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.skewness, 0.0);
  EXPECT_DOUBLE_EQ(s.kurtosis, 0.0);
}

TEST(Summarize, SkewSignMatchesAsymmetry) {
  // Right tail -> positive skewness; mirrored -> negative.
  const std::vector<double> right = {1, 1, 1, 2, 2, 3, 10};
  const std::vector<double> left = {-1, -1, -1, -2, -2, -3, -10};
  EXPECT_GT(summarize(right).skewness, 0.5);
  EXPECT_LT(summarize(left).skewness, -0.5);
}

TEST(Percentile, MatchesNumpyLinearInterpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 1.75);  // numpy default ("linear")
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Percentile, ErrorsOnEmptyOrBadPct) {
  EXPECT_THROW(percentile({}, 50), InvariantError);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1), InvariantError);
  EXPECT_THROW(percentile(xs, 101), InvariantError);
}

TEST(IndexSlope, ExactForLinearSeries) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(3.0 + 2.5 * i);
  EXPECT_NEAR(index_slope(xs), 2.5, 1e-12);
}

TEST(IndexSlope, ZeroForConstantAndShortSeries) {
  EXPECT_DOUBLE_EQ(index_slope(std::vector<double>{5.0}), 0.0);
  EXPECT_NEAR(index_slope(std::vector<double>(10, 7.0)), 0.0, 1e-12);
}

TEST(Correlation, PerfectAndInverse) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  const std::vector<double> down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
}

TEST(Correlation, ZeroVarianceGivesZero) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> flat = {5, 5, 5};
  EXPECT_DOUBLE_EQ(correlation(xs, flat), 0.0);
}

TEST(OnlineStats, MatchesBatchSummary) {
  Rng rng(5);
  std::vector<double> xs;
  OnlineStats online;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    xs.push_back(x);
    online.add(x);
  }
  const Summary batch = summarize(xs);
  EXPECT_NEAR(online.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(online.variance(), batch.variance, 1e-9);
  EXPECT_DOUBLE_EQ(online.min(), batch.min);
  EXPECT_DOUBLE_EQ(online.max(), batch.max);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(6);
  OnlineStats all, part1, part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 10);
    all.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), all.count());
  EXPECT_NEAR(part1.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(part1.variance(), all.variance(), 1e-9);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma ewma(0.3);
  EXPECT_TRUE(ewma.empty());
  for (int i = 0; i < 100; ++i) ewma.add(7.0);
  EXPECT_NEAR(ewma.value(), 7.0, 1e-9);
}

TEST(Ewma, FirstValueInitializes) {
  Ewma ewma(0.1);
  ewma.add(42.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 42.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), InvariantError);
  EXPECT_THROW(Ewma(1.5), InvariantError);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(50.0);  // clamped to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 2.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvariantError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvariantError);
}

}  // namespace
}  // namespace hpas
