// Tests for the RefineLB-style rebalancer and native CPU pinning.
#include <gtest/gtest.h>

#include <sched.h>

#include "anomalies/cpuoccupy.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "lb/balancers.hpp"

namespace hpas {
namespace {

using lb::CoreCapacities;
using lb::GreedyRefineLb;
using lb::LbObjOnly;
using lb::ObjectLoads;
using lb::RefineResult;

TEST(Refine, BalancedInputNeedsNoMigrations) {
  const ObjectLoads objects(8, 1.0);
  const CoreCapacities caps(4, 1.0);
  const std::vector<int> even = LbObjOnly().assign(objects, caps);
  const RefineResult result = lb::refine_assignment(even, objects, caps);
  EXPECT_EQ(result.migrations, 0);
  EXPECT_EQ(result.assignment, even);
}

TEST(Refine, FixesOverloadWithFewMigrations) {
  // Everything starts on core 0 of 4 equal cores.
  const ObjectLoads objects(8, 1.0);
  const CoreCapacities caps(4, 1.0);
  const std::vector<int> all_on_zero(8, 0);
  const RefineResult result =
      lb::refine_assignment(all_on_zero, objects, caps);
  EXPECT_GT(result.migrations, 0);
  // Final time within tolerance of the ideal (2.0s).
  EXPECT_LE(lb::iteration_time(result.assignment, objects, caps),
            2.0 * 1.05 + 1e-9);
  // Exactly 6 objects needed to move (2 stay).
  EXPECT_EQ(result.migrations, 6);
}

TEST(Refine, NeverWorsensTheAssignment) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n_obj = 4 + rng.next_below(40);
    const std::size_t n_core = 2 + rng.next_below(8);
    ObjectLoads objects(n_obj);
    for (auto& load : objects) load = rng.uniform(0.1, 2.0);
    CoreCapacities caps(n_core);
    for (auto& cap : caps) cap = rng.uniform(0.3, 1.0);
    std::vector<int> initial(n_obj);
    for (auto& core : initial)
      core = static_cast<int>(rng.next_below(n_core));

    const double before = lb::iteration_time(initial, objects, caps);
    const RefineResult result =
        lb::refine_assignment(initial, objects, caps);
    const double after =
        lb::iteration_time(result.assignment, objects, caps);
    EXPECT_LE(after, before + 1e-9);
  }
}

TEST(Refine, MigratesLessThanGreedyFromScratch) {
  // Mild imbalance: refine should touch only a few objects, while a
  // from-scratch greedy pass reshuffles many.
  Rng rng(33);
  ObjectLoads objects(32);
  for (auto& load : objects) load = rng.uniform(0.8, 1.2);
  CoreCapacities caps(8, 1.0);
  caps[0] = 0.5;  // one degraded core
  const std::vector<int> previous = LbObjOnly().assign(objects, caps);

  const RefineResult refined =
      lb::refine_assignment(previous, objects, caps);
  const auto greedy = GreedyRefineLb().assign(objects, caps);
  int greedy_moves = 0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (greedy[i] != previous[i]) ++greedy_moves;
  }
  EXPECT_LT(refined.migrations, greedy_moves);
  EXPECT_GT(refined.migrations, 0);
}

TEST(Refine, Validates) {
  EXPECT_THROW(lb::refine_assignment({0, 1}, {1.0}, {1.0, 1.0}),
               InvariantError);
  EXPECT_THROW(lb::refine_assignment({0}, {1.0}, {1.0}, 0.9),
               InvariantError);
}

TEST(Pinning, CpuOccupyRunsPinned) {
  anomalies::CpuOccupyOptions opts;
  opts.common.duration_s = 0.15;
  opts.common.pin_cpu = 0;
  anomalies::CpuOccupy anomaly(opts);
  const auto stats = anomaly.run();
  EXPECT_GT(stats.iterations, 0u);
  // The calling thread was pinned by run(); verify the affinity stuck.
  cpu_set_t set;
  CPU_ZERO(&set);
  ASSERT_EQ(sched_getaffinity(0, sizeof(set), &set), 0);
  EXPECT_TRUE(CPU_ISSET(0, &set));
  EXPECT_EQ(CPU_COUNT(&set), 1);

  // Restore full affinity so later tests are unaffected.
  CPU_ZERO(&set);
  for (int cpu = 0; cpu < CPU_SETSIZE && cpu < 1024; ++cpu)
    CPU_SET(static_cast<unsigned>(cpu), &set);
  sched_setaffinity(0, sizeof(set), &set);
}

TEST(Pinning, UnpinnedLeavesAffinityAlone) {
  cpu_set_t before;
  CPU_ZERO(&before);
  ASSERT_EQ(sched_getaffinity(0, sizeof(before), &before), 0);
  anomalies::CpuOccupyOptions opts;
  opts.common.duration_s = 0.05;
  opts.common.pin_cpu = -1;
  anomalies::CpuOccupy anomaly(opts);
  anomaly.run();
  cpu_set_t after;
  CPU_ZERO(&after);
  ASSERT_EQ(sched_getaffinity(0, sizeof(after), &after), 0);
  EXPECT_TRUE(CPU_EQUAL(&before, &after));
}

}  // namespace
}  // namespace hpas
