// Tests for the extension features: the OS-jitter injector and the
// generalized WeightedCpPolicy.
#include <gtest/gtest.h>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "common/error.hpp"
#include "sched/policies.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace hpas {
namespace {

TEST(OsJitter, AverageLoadMatchesDutyParameters) {
  auto world = sim::make_voltrino_world();
  // 2 ms bursts, 98 ms mean gap => ~2% of one core.
  simanom::inject_os_jitter(*world, 0, 0, 0.002, 0.098, 200.0, 42);
  world->run_until(200.5);
  const double busy = world->node(0).counters().cpu_sys_seconds;
  EXPECT_NEAR(busy / 200.0, 0.02, 0.008);
}

TEST(OsJitter, AccountsAsSystemTime) {
  auto world = sim::make_voltrino_world();
  simanom::inject_os_jitter(*world, 0, 0, 0.005, 0.05, 20.0, 7);
  world->run_until(21.0);
  EXPECT_GT(world->node(0).counters().cpu_sys_seconds, 0.5);
  EXPECT_NEAR(world->node(0).counters().cpu_user_seconds, 0.0, 1e-9);
}

TEST(OsJitter, DeterministicForFixedSeed) {
  auto run_once = [] {
    auto world = sim::make_voltrino_world();
    simanom::inject_os_jitter(*world, 0, 0, 0.002, 0.1, 50.0, 1234);
    world->run_until(51.0);
    return world->node(0).counters().cpu_sys_seconds;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(OsJitter, StopsAtDeadline) {
  auto world = sim::make_voltrino_world();
  sim::Task* task = simanom::inject_os_jitter(*world, 0, 0, 0.002, 0.1,
                                              5.0, 9);
  world->run_until(20.0);
  EXPECT_TRUE(task->done());
}

TEST(OsJitter, ValidatesParameters) {
  auto world = sim::make_voltrino_world();
  EXPECT_THROW(simanom::inject_os_jitter(*world, 0, 0, 0.0, 0.1, 1.0, 1),
               InvariantError);
  EXPECT_THROW(simanom::inject_os_jitter(*world, 0, 0, 0.001, 0.0, 1.0, 1),
               InvariantError);
}

TEST(OsJitter, SlowsBarrierSynchronizedJobs) {
  auto run_job = [](bool with_jitter) {
    sim::NodeConfig config;
    config.cores = 32;
    sim::World world(config, sim::Topology::star(1, 10e9), sim::FsConfig{});
    if (with_jitter) {
      for (int core = 0; core < 16; ++core) {
        simanom::inject_os_jitter(world, 0, core, 0.002, 0.05, 1e6,
                                  100u + static_cast<unsigned>(core));
      }
    }
    apps::AppSpec spec = apps::app_by_name("CoMD");
    spec.iterations = 50;
    spec.comm_bytes_per_iteration = 0;
    apps::BspApp app(world, spec, {.nodes = {0}, .ranks_per_node = 16,
                                   .first_core = 0});
    return app.run_to_completion();
  };
  EXPECT_GT(run_job(true), run_job(false) * 1.02);
}

TEST(WeightedCp, ExtremesSelectDifferently) {
  // Node 0: fresh hog (current high, avg clean). Node 1: old hog
  // (current clean, avg high). Node 2: clean.
  const std::vector<sched::NodeStatus> status = {
      {0, 0.5, 0.0, 100e9},
      {1, 0.0, 0.5, 100e9},
      {2, 0.05, 0.05, 100e9},
  };
  const sched::WeightedCpPolicy current_only(1.0);
  const sched::WeightedCpPolicy history_only(0.0);
  // Current-only forgives node 1, blames node 0.
  EXPECT_EQ(current_only.select_nodes(status, 2),
            (std::vector<int>{1, 2}));
  // History-only forgives node 0, blames node 1.
  EXPECT_EQ(history_only.select_nodes(status, 2),
            (std::vector<int>{0, 2}));
}

TEST(WeightedCp, DefaultWeightMatchesWbas) {
  const sched::NodeStatus node{0, 0.3, 0.6, 50.0};
  const sched::WeightedCpPolicy blended(5.0 / 6.0);
  EXPECT_NEAR(blended.computing_capacity(node),
              sched::WbasPolicy::computing_capacity(node), 1e-12);
}

TEST(WeightedCp, Validates) {
  EXPECT_THROW(sched::WeightedCpPolicy(-0.1), InvariantError);
  EXPECT_THROW(sched::WeightedCpPolicy(1.1), InvariantError);
  const sched::WeightedCpPolicy policy(0.5);
  EXPECT_THROW(policy.select_nodes({}, 1), ConfigError);
}

TEST(WeightedCp, NameEncodesWeight) {
  EXPECT_EQ(sched::WeightedCpPolicy(0.25).name(), "CP(w=0.25)");
}

}  // namespace
}  // namespace hpas
