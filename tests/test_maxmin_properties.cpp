// Property-based tests for max-min fair allocation (sim/maxmin.cpp).
//
// Seeded-random demand vectors (including infinite/greedy consumers)
// checked against the water-filling invariants: feasibility, capacity
// respect, work conservation, bottleneck saturation, permutation
// invariance, and weighted proportionality. Every case is reproducible
// from the printed seed.
#include "sim/maxmin.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hpas::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTol = 1e-9;

struct Case {
  double capacity;
  std::vector<double> demands;
};

Case random_case(Rng& rng) {
  Case c;
  c.capacity = rng.uniform(0.0, 100.0);
  const int n = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < n; ++i) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.2) {
      c.demands.push_back(kInf);  // greedy consumer
    } else if (roll < 0.3) {
      c.demands.push_back(0.0);   // idle consumer
    } else {
      c.demands.push_back(rng.uniform(0.0, 40.0));
    }
  }
  return c;
}

void check_invariants(const Case& c, const std::vector<double>& alloc) {
  ASSERT_EQ(alloc.size(), c.demands.size());
  double total = 0.0;
  double finite_demand_total = 0.0;
  bool any_infinite = false;
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    // Feasibility: 0 <= alloc[i] <= demand[i].
    EXPECT_GE(alloc[i], 0.0) << "i=" << i;
    EXPECT_LE(alloc[i], c.demands[i] + kTol) << "i=" << i;
    total += alloc[i];
    if (std::isinf(c.demands[i])) {
      any_infinite = true;
    } else {
      finite_demand_total += c.demands[i];
    }
  }
  // Capacity is never exceeded.
  EXPECT_LE(total, c.capacity + kTol);
  // Work conservation: the link carries min(capacity, total demand).
  const double expected_total =
      any_infinite ? c.capacity : std::min(c.capacity, finite_demand_total);
  EXPECT_NEAR(total, expected_total, 1e-6 * std::max(1.0, expected_total));

  // Bottleneck saturation / max-min optimality: any consumer that did not
  // get its full demand receives at least as much as every other
  // consumer (its allocation is the fair share, the maximum of the
  // smallest).
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    if (alloc[i] + kTol < c.demands[i]) {
      for (std::size_t j = 0; j < alloc.size(); ++j)
        EXPECT_LE(alloc[j], alloc[i] + 1e-6)
            << "consumer " << i << " is capped below consumer " << j;
    }
  }
}

TEST(MaxMinProperties, RandomCasesSatisfyInvariants) {
  Rng rng(0xFA1Bu);
  for (int trial = 0; trial < 500; ++trial) {
    const Case c = random_case(rng);
    const auto alloc = max_min_allocate(c.capacity, c.demands);
    check_invariants(c, alloc);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing trial " << trial << " capacity="
                    << c.capacity;
      break;
    }
  }
}

TEST(MaxMinProperties, PermutationInvariance) {
  Rng rng(0x5EEDu);
  for (int trial = 0; trial < 200; ++trial) {
    const Case c = random_case(rng);
    const auto alloc = max_min_allocate(c.capacity, c.demands);

    // Shuffle demands, allocate, un-shuffle: same answer per consumer.
    std::vector<std::size_t> perm(c.demands.size());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    for (std::size_t i = perm.size(); i > 1; --i)
      std::swap(perm[i - 1],
                perm[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(i) - 1))]);

    std::vector<double> shuffled(c.demands.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
      shuffled[i] = c.demands[perm[i]];
    const auto shuffled_alloc = max_min_allocate(c.capacity, shuffled);
    for (std::size_t i = 0; i < perm.size(); ++i)
      EXPECT_NEAR(shuffled_alloc[i], alloc[perm[i]], 1e-9)
          << "trial " << trial << " slot " << i;
  }
}

TEST(MaxMinProperties, GreedyConsumersSplitResidualEvenly) {
  // Two greedy consumers next to small finite ones: the greedy pair
  // splits what the finite demands leave, equally.
  const std::vector<double> demands = {1.0, kInf, 2.0, kInf};
  const auto alloc = max_min_allocate(10.0, demands);
  EXPECT_NEAR(alloc[0], 1.0, kTol);
  EXPECT_NEAR(alloc[2], 2.0, kTol);
  EXPECT_NEAR(alloc[1], 3.5, kTol);
  EXPECT_NEAR(alloc[3], 3.5, kTol);
}

TEST(MaxMinProperties, UnderloadedLinkGrantsAllDemands) {
  const std::vector<double> demands = {1.0, 2.0, 3.0};
  const auto alloc = max_min_allocate(100.0, demands);
  for (std::size_t i = 0; i < demands.size(); ++i)
    EXPECT_NEAR(alloc[i], demands[i], kTol);
}

TEST(MaxMinProperties, EmptyAndZeroEdgeCases) {
  EXPECT_TRUE(max_min_allocate(5.0, std::vector<double>{}).empty());
  const auto zero_cap = max_min_allocate(0.0, std::vector<double>{1.0, kInf});
  EXPECT_NEAR(zero_cap[0], 0.0, kTol);
  EXPECT_NEAR(zero_cap[1], 0.0, kTol);
}

TEST(MaxMinWeightedProperties, ReducesToUnweightedAtEqualWeights) {
  Rng rng(0xBEEFu);
  for (int trial = 0; trial < 100; ++trial) {
    const Case c = random_case(rng);
    const std::vector<double> ones(c.demands.size(), 1.0);
    const auto plain = max_min_allocate(c.capacity, c.demands);
    const auto weighted =
        max_min_allocate_weighted(c.capacity, c.demands, ones);
    for (std::size_t i = 0; i < plain.size(); ++i)
      EXPECT_NEAR(weighted[i], plain[i], 1e-9) << "trial " << trial;
  }
}

TEST(MaxMinWeightedProperties, SharesProportionalToWeightWhileUnsaturated) {
  // Two greedy consumers with weights 1 and 3 split 8.0 as 2:6.
  const std::vector<double> demands = {kInf, kInf};
  const std::vector<double> weights = {1.0, 3.0};
  const auto alloc = max_min_allocate_weighted(8.0, demands, weights);
  EXPECT_NEAR(alloc[0], 2.0, kTol);
  EXPECT_NEAR(alloc[1], 6.0, kTol);
}

TEST(MaxMinWeightedProperties, RandomCasesRespectCapacityAndDemands) {
  Rng rng(0xCAFEu);
  for (int trial = 0; trial < 200; ++trial) {
    const Case c = random_case(rng);
    std::vector<double> weights;
    weights.reserve(c.demands.size());
    for (std::size_t i = 0; i < c.demands.size(); ++i)
      weights.push_back(rng.uniform(0.1, 5.0));
    const auto alloc =
        max_min_allocate_weighted(c.capacity, c.demands, weights);
    ASSERT_EQ(alloc.size(), c.demands.size());
    double total = 0.0;
    for (std::size_t i = 0; i < alloc.size(); ++i) {
      EXPECT_GE(alloc[i], -kTol);
      EXPECT_LE(alloc[i], c.demands[i] + kTol);
      total += alloc[i];
    }
    EXPECT_LE(total, c.capacity + 1e-6) << "trial " << trial;
  }
}

// --- sorted single-pass solver vs the round-based default --------------
//
// max_min_allocate_weighted_sorted freezes consumers in demand/weight
// order with one pass; the round solver subtracts frozen demands in index
// order. Same fixed point, different floating-point association, so the
// agreement contract is ~1e-12 relative, not bitwise.

void expect_solvers_agree(double capacity, const std::vector<double>& demands,
                          const std::vector<double>& weights,
                          const char* label) {
  const auto rounds = max_min_allocate_weighted(capacity, demands, weights);
  const auto sorted =
      max_min_allocate_weighted_sorted(capacity, demands, weights);
  ASSERT_EQ(rounds.size(), sorted.size()) << label;
  const double scale = std::max(1.0, capacity);
  for (std::size_t i = 0; i < rounds.size(); ++i)
    EXPECT_NEAR(sorted[i], rounds[i], 1e-12 * scale)
        << label << " consumer " << i;
}

TEST(MaxMinSortedSolver, AgreesWithRoundSolverOnRandomCases) {
  Rng rng(0x50F7u);
  for (int trial = 0; trial < 500; ++trial) {
    const Case c = random_case(rng);
    std::vector<double> weights;
    weights.reserve(c.demands.size());
    for (std::size_t i = 0; i < c.demands.size(); ++i)
      weights.push_back(rng.uniform(0.1, 5.0));
    expect_solvers_agree(c.capacity, c.demands, weights,
                         ("trial " + std::to_string(trial)).c_str());
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(MaxMinSortedSolver, AllSaturatedConsumersGetExactDemands) {
  // Total demand below capacity: every consumer freezes at its demand and
  // both solvers must return the demands themselves.
  const std::vector<double> demands = {0.5, 3.0, 0.0, 2.25};
  const std::vector<double> weights = {2.0, 1.0, 4.0, 0.5};
  const auto sorted = max_min_allocate_weighted_sorted(100.0, demands, weights);
  for (std::size_t i = 0; i < demands.size(); ++i)
    EXPECT_DOUBLE_EQ(sorted[i], demands[i]) << i;
  expect_solvers_agree(100.0, demands, weights, "all-saturated");
}

TEST(MaxMinSortedSolver, ZeroCapacityGivesZeroToEveryone) {
  const std::vector<double> demands = {1.0, kInf, 0.0};
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  const auto sorted = max_min_allocate_weighted_sorted(0.0, demands, weights);
  for (const double a : sorted) EXPECT_DOUBLE_EQ(a, 0.0);
  expect_solvers_agree(0.0, demands, weights, "zero-capacity");
}

TEST(MaxMinSortedSolver, GreedyConsumersSplitByWeight) {
  const std::vector<double> demands = {kInf, kInf, 1.0};
  const std::vector<double> weights = {1.0, 3.0, 1.0};
  const auto sorted = max_min_allocate_weighted_sorted(9.0, demands, weights);
  EXPECT_NEAR(sorted[2], 1.0, kTol);
  EXPECT_NEAR(sorted[0], 2.0, kTol);
  EXPECT_NEAR(sorted[1], 6.0, kTol);
}

TEST(MaxMinSortedSolver, RejectsInvalidInputsLikeTheDefault) {
  const std::vector<double> neg = {-1.0};
  const std::vector<double> one = {1.0};
  const std::vector<double> zero_w = {0.0};
  EXPECT_ANY_THROW(max_min_allocate_weighted_sorted(1.0, neg, one));
  EXPECT_ANY_THROW(max_min_allocate_weighted_sorted(1.0, one, zero_w));
}

}  // namespace
}  // namespace hpas::sim
