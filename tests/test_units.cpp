// Tests for size/percent/duration parsing (common/units.hpp).
#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpas {
namespace {

TEST(ParseBytes, PlainNumbers) {
  EXPECT_EQ(parse_bytes("0"), 0u);
  EXPECT_EQ(parse_bytes("1"), 1u);
  EXPECT_EQ(parse_bytes("4096"), 4096u);
}

TEST(ParseBytes, BinarySuffixes) {
  EXPECT_EQ(parse_bytes("1K"), 1024u);
  EXPECT_EQ(parse_bytes("64k"), 64u * 1024);
  EXPECT_EQ(parse_bytes("35M"), 35u * 1024 * 1024);
  EXPECT_EQ(parse_bytes("100MB"), 100u * 1024 * 1024);
  EXPECT_EQ(parse_bytes("32KiB"), 32u * 1024);
  EXPECT_EQ(parse_bytes("2G"), 2ULL * 1024 * 1024 * 1024);
  EXPECT_EQ(parse_bytes("2GiB"), 2ULL * 1024 * 1024 * 1024);
}

TEST(ParseBytes, FractionalValues) {
  EXPECT_EQ(parse_bytes("1.5K"), 1536u);
  EXPECT_EQ(parse_bytes("0.5M"), 512u * 1024);
}

TEST(ParseBytes, RejectsGarbage) {
  EXPECT_THROW(parse_bytes(""), ConfigError);
  EXPECT_THROW(parse_bytes("abc"), ConfigError);
  EXPECT_THROW(parse_bytes("12X"), ConfigError);
  EXPECT_THROW(parse_bytes("12 K"), ConfigError);
  EXPECT_THROW(parse_bytes("-5"), ConfigError);
}

TEST(ParsePercent, AcceptsWithAndWithoutSign) {
  EXPECT_DOUBLE_EQ(parse_percent("80"), 80.0);
  EXPECT_DOUBLE_EQ(parse_percent("80%"), 80.0);
  EXPECT_DOUBLE_EQ(parse_percent("12.5%"), 12.5);
  EXPECT_DOUBLE_EQ(parse_percent("0"), 0.0);
  EXPECT_DOUBLE_EQ(parse_percent("100"), 100.0);
}

TEST(ParsePercent, RejectsOutOfRange) {
  EXPECT_THROW(parse_percent("101"), ConfigError);
  EXPECT_THROW(parse_percent("100.5%"), ConfigError);
  EXPECT_THROW(parse_percent("80!"), ConfigError);
}

TEST(ParseDuration, Suffixes) {
  EXPECT_DOUBLE_EQ(parse_duration_seconds("30"), 30.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("30s"), 30.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("250ms"), 0.25);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("5m"), 300.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("2h"), 7200.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("0.5s"), 0.5);
}

TEST(ParseDuration, RejectsUnknownSuffix) {
  EXPECT_THROW(parse_duration_seconds("10d"), ConfigError);
  EXPECT_THROW(parse_duration_seconds(""), ConfigError);
}

TEST(ParseU64, Basics) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~0ULL);
  EXPECT_THROW(parse_u64("-1"), ConfigError);
  EXPECT_THROW(parse_u64("1.5"), ConfigError);
  EXPECT_THROW(parse_u64(""), ConfigError);
}

TEST(ParseDouble, Basics) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_THROW(parse_double("2.5x"), ConfigError);
}

TEST(FormatBytes, PicksSuffix) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(1536), "1.50KiB");
  EXPECT_EQ(format_bytes(35 * kMiB), "35.00MiB");
  EXPECT_EQ(format_bytes(2 * kGiB), "2.00GiB");
}

TEST(FormatRate, PicksSuffix) {
  EXPECT_EQ(format_rate(100.0), "100.0B/s");
  EXPECT_EQ(format_rate(2.0 * static_cast<double>(kGiB)), "2.00GiB/s");
}

TEST(FormatSeconds, Ranges) {
  EXPECT_EQ(format_seconds(0.0000042), "4.20us");
  EXPECT_EQ(format_seconds(0.042), "42.00ms");
  EXPECT_EQ(format_seconds(95.0), "95.0s");
}

/// Round-trip property: parse(format(x)) stays within formatting precision.
class BytesRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BytesRoundTrip, ParseFormatParse) {
  const std::uint64_t original = GetParam();
  const std::uint64_t reparsed = parse_bytes(format_bytes(original));
  // Format keeps 2 decimal places -> up to 1% relative error.
  const double rel = original == 0
                         ? 0.0
                         : std::abs(static_cast<double>(reparsed) -
                                    static_cast<double>(original)) /
                               static_cast<double>(original);
  EXPECT_LE(rel, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BytesRoundTrip,
                         ::testing::Values(1, 100, 1024, 4096, 35 * kMiB,
                                           kGiB, 3 * kGiB + 5));

}  // namespace
}  // namespace hpas
