// Fuzz-style replay properties for the tracing layer.
//
// Random workload grids (counter-derived, so the "random" cases are the
// same every run and across thread counts) run twice with tracing on;
// the serialized traces must match byte for byte, diff_traces() must
// report agreement, and neither property may depend on the worker thread
// count. A deliberately perturbed seed must diverge, and the divergence
// report must name a specific event.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "runner/grid.hpp"
#include "runner/runner.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"
#include "trace/export.hpp"
#include "trace/replay.hpp"
#include "trace/tracer.hpp"

namespace {

using hpas::runner::ScenarioSpec;
using hpas::runner::SweepGrid;
using hpas::runner::SweepOptions;
using hpas::runner::SweepResult;

// Small axes so a grid stays fast; the fuzz dimension is which cells a
// case picks, not how long each runs.
const char* kApps[] = {"none", "CoMD", "miniMD"};
const char* kAnomalies[] = {"none",   "cpuoccupy", "membw",
                            "memleak", "os_jitter", "iobandwidth"};

/// Deterministic "random" grid number `index`: 2-4 scenarios with
/// app/anomaly/intensity drawn from a counter-derived stream.
SweepGrid fuzz_grid(std::uint64_t index) {
  hpas::SplitMix64 stream(0xF022ED ^ (index * 0x9E3779B97F4A7C15ULL));
  SweepGrid grid;
  grid.name = "fuzz" + std::to_string(index);
  const std::size_t count = 2 + stream.next() % 3;
  for (std::size_t i = 0; i < count; ++i) {
    ScenarioSpec spec;
    spec.name = grid.name + "_s" + std::to_string(i);
    spec.app = kApps[stream.next() % (sizeof(kApps) / sizeof(kApps[0]))];
    spec.anomaly =
        kAnomalies[stream.next() % (sizeof(kAnomalies) / sizeof(kAnomalies[0]))];
    spec.intensity = 0.25 + 0.25 * static_cast<double>(stream.next() % 4);
    spec.duration_s = 4.0 + static_cast<double>(stream.next() % 4);
    spec.sample_period_s = 1.0;
    spec.run_to_completion = false;
    spec.seed = hpas::runner::derive_scenario_seed(0xF022ED, index * 100 + i);
    grid.scenarios.push_back(spec);
  }
  return grid;
}

SweepResult sweep_result(const SweepGrid& grid, int threads,
                         int sim_shards = 0) {
  SweepOptions options;
  options.threads = threads;
  options.capture_traces = true;
  options.sim_shards = sim_shards;
  SweepResult result = hpas::runner::run_sweep(grid, options);
  EXPECT_TRUE(result.ok()) << result.first_error();
  return result;
}

std::vector<std::string> sweep_traces(const SweepGrid& grid, int threads,
                                      int sim_shards = 0) {
  const SweepResult result = sweep_result(grid, threads, sim_shards);
  std::vector<std::string> traces;
  for (const auto& s : result.scenarios) {
    EXPECT_FALSE(s.trace_bin.empty()) << s.spec.name;
    EXPECT_GT(s.trace_records, 0u) << s.spec.name;
    traces.push_back(s.trace_bin);
  }
  return traces;
}

hpas::trace::TraceFile parse(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return hpas::trace::read_binary(in);
}

TEST(TraceReplay, FuzzGridsReplayByteIdenticalAcrossThreadCounts) {
  for (std::uint64_t grid_index = 0; grid_index < 4; ++grid_index) {
    const SweepGrid grid = fuzz_grid(grid_index);
    const std::vector<std::string> baseline = sweep_traces(grid, 1);
    for (const int threads : {1, 2, 5}) {
      const std::vector<std::string> rerun = sweep_traces(grid, threads);
      ASSERT_EQ(rerun.size(), baseline.size());
      for (std::size_t i = 0; i < baseline.size(); ++i) {
        // Byte-identity is the strong form of the replay guarantee...
        EXPECT_EQ(rerun[i], baseline[i])
            << grid.name << " scenario " << i << " at " << threads
            << " threads";
        // ...and the checker must agree with it.
        const auto divergence =
            hpas::trace::diff_traces(parse(baseline[i]), parse(rerun[i]));
        EXPECT_FALSE(divergence.diverged) << divergence.description;
      }
    }
  }
}

TEST(TraceReplay, FuzzGridsAreShardCountInvariant) {
  // The sharded executor's whole contract: any shard count, under any
  // worker thread count, produces the serial run's bytes -- traces,
  // metrics CSVs, and the aggregated summary alike.
  for (std::uint64_t grid_index = 0; grid_index < 3; ++grid_index) {
    const SweepGrid grid = fuzz_grid(grid_index);
    const SweepResult baseline = sweep_result(grid, /*threads=*/1,
                                              /*sim_shards=*/1);
    const std::string baseline_summary = baseline.summary_json().dump();
    for (const int shards : {1, 2, 4, 8}) {
      for (const int threads : {1, 2, 5}) {
        const SweepResult rerun = sweep_result(grid, threads, shards);
        ASSERT_EQ(rerun.scenarios.size(), baseline.scenarios.size());
        for (std::size_t i = 0; i < baseline.scenarios.size(); ++i) {
          const auto& want = baseline.scenarios[i];
          const auto& got = rerun.scenarios[i];
          EXPECT_EQ(got.trace_bin, want.trace_bin)
              << grid.name << " scenario " << i << " at " << shards
              << " shards x " << threads << " threads";
          EXPECT_EQ(got.metrics_csv, want.metrics_csv)
              << grid.name << " scenario " << i << " at " << shards
              << " shards x " << threads << " threads";
          const auto divergence = hpas::trace::diff_traces(
              parse(want.trace_bin), parse(got.trace_bin));
          EXPECT_FALSE(divergence.diverged) << divergence.description;
        }
        EXPECT_EQ(rerun.summary_json().dump(), baseline_summary)
            << grid.name << " at " << shards << " shards x " << threads
            << " threads";
      }
    }
  }
}

TEST(TraceReplay, SeedChangeDivergesAndIsLocalized) {
  SweepGrid grid = fuzz_grid(1);
  // os_jitter consumes the scenario RNG stream, so a seed change is
  // guaranteed to show up in the trace.
  grid.scenarios.resize(1);
  grid.scenarios[0].anomaly = "os_jitter";
  grid.scenarios[0].intensity = 1.0;
  grid.scenarios[0].app = "none";

  const std::vector<std::string> original = sweep_traces(grid, 1);
  grid.scenarios[0].seed += 1;
  const std::vector<std::string> perturbed = sweep_traces(grid, 1);

  ASSERT_NE(original[0], perturbed[0]);
  const auto divergence =
      hpas::trace::diff_traces(parse(original[0]), parse(perturbed[0]));
  ASSERT_TRUE(divergence.diverged);
  // The report names one specific event, with both sides rendered.
  EXPECT_NE(divergence.description.find("event #"), std::string::npos)
      << divergence.description;
  EXPECT_NE(divergence.description.find(" vs "), std::string::npos)
      << divergence.description;
}

TEST(TraceReplay, DirectWorldCaptureMatchesItself) {
  // Replay at the World level (no runner): two identical builds of a
  // memleak scenario produce bit-equal streams.
  auto run_once = [] {
    auto world = hpas::sim::make_voltrino_world();
    hpas::trace::TraceCapture capture;
    world->attach_tracer(&capture.tracer());
    world->enable_monitoring(1.0);
    hpas::simanom::inject_memleak(*world, /*node=*/0, /*core=*/4,
                                  /*chunk_bytes=*/20.0 * 1024 * 1024,
                                  /*chunk_interval_s=*/1.0,
                                  /*duration_s=*/10.0);
    world->run_until(12.0);
    std::ostringstream out(std::ios::binary);
    hpas::trace::write_binary(out, capture.take());
    return out.str();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
  const auto divergence = hpas::trace::diff_traces(parse(a), parse(b));
  EXPECT_FALSE(divergence.diverged) << divergence.description;
}

TEST(TraceReplay, RingTruncatedTraceStillChecksAgainstLosslessRun) {
  // A bounded ring keeps only the newest window; seq alignment lets the
  // checker compare that window against a lossless re-run.
  auto run_with = [](std::size_t ring_capacity,
                     bool lossless) -> hpas::trace::TraceFile {
    auto world = hpas::sim::make_voltrino_world();
    hpas::trace::TraceCapture capture;
    hpas::trace::Tracer bounded(ring_capacity);
    if (lossless) {
      world->attach_tracer(&capture.tracer());
    } else {
      world->attach_tracer(&bounded);
    }
    world->enable_monitoring(1.0);
    hpas::simanom::inject_cpuoccupy(*world, 0, 0, 80.0, 8.0);
    world->run_until(10.0);
    if (lossless) return capture.take();
    hpas::trace::TraceFile file;
    file.emitted = bounded.emitted();
    file.dropped = bounded.dropped();
    file.labels = bounded.sorted_labels();
    file.records = bounded.buffer().snapshot();
    return file;
  };
  const hpas::trace::TraceFile truncated = run_with(16, false);
  const hpas::trace::TraceFile lossless = run_with(0, true);
  ASSERT_GT(truncated.dropped, 0u);
  ASSERT_EQ(truncated.records.size(), 16u);
  const auto divergence = hpas::trace::diff_traces(truncated, lossless);
  EXPECT_FALSE(divergence.diverged) << divergence.description;
}

}  // namespace
