// Integration tests for the World: fluid-DES timing, phase transitions,
// memory/OOM, monitoring, and determinism.
#include "sim/world.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/cluster.hpp"

namespace hpas::sim {
namespace {

World make_small_world() {
  return World(NodeConfig{}, Topology::two_tier(2, 2, 10e9, 18e9),
               FsConfig{});
}

TEST(World, SleepPhaseTimingIsExact) {
  World world = make_small_world();
  int wakes = 0;
  world.spawn_task("sleeper", 0, 0, TaskProfile{}, Phase::sleep(2.5),
                   [&wakes](Task&) {
                     ++wakes;
                     return Phase::done();
                   });
  world.run_until(10.0);
  EXPECT_EQ(wakes, 1);
}

TEST(World, ComputeDurationMatchesRates) {
  World world = make_small_world();
  TaskProfile profile;
  profile.ips_peak = 2.0e9;
  profile.m1_base = 0; profile.m1_max = 0;
  profile.m2_base = 0; profile.m2_max = 0;
  profile.m3_base = 0; profile.m3_max = 0;
  double finish_time = -1.0;
  // 4e9 instructions at 2e9 instr/s (no stalls, dedicated core) = 2 s.
  world.spawn_task("burner", 0, 0, profile, Phase::compute(4.0e9),
                   [&](Task&) {
                     finish_time = world.now();
                     return Phase::done();
                   });
  world.run_until(10.0);
  EXPECT_NEAR(finish_time, 2.0, 1e-6);
}

TEST(World, MessageTransferTimeIncludesLatencyAndBandwidth) {
  World world = make_small_world();
  TaskProfile profile;
  profile.msg_latency_s = 1e-3;
  double finish_time = -1.0;
  // 10 GB over the 10 GB/s NIC (intra-switch) = 1 s + 1 ms latency.
  world.spawn_task("sender", 0, 0, profile, Phase::message(1, 10.0e9),
                   [&](Task&) {
                     finish_time = world.now();
                     return Phase::done();
                   });
  world.run_until(10.0);
  EXPECT_NEAR(finish_time, 1.001, 1e-6);
}

TEST(World, IoPhaseUsesFilesystem) {
  World world(NodeConfig{}, Topology::star(2, 1e9),
              FsConfig{.metadata_ops_per_s = 1000,
                       .disk_write_bw = 100e6,
                       .disk_read_bw = 100e6,
                       .dedicated_mds = true,
                       .metadata_disk_cost_s = 0.0});
  double finish_time = -1.0;
  world.spawn_task("writer", 0, 0, TaskProfile{},
                   Phase::io(IoKind::kWrite, 200e6), [&](Task&) {
                     finish_time = world.now();
                     return Phase::done();
                   });
  world.run_until(10.0);
  EXPECT_NEAR(finish_time, 2.0, 1e-6);
  EXPECT_NEAR(world.filesystem().counters().bytes_written, 200e6, 1e3);
}

TEST(World, PhaseChainsRunInSequence) {
  World world = make_small_world();
  std::vector<PhaseKind> seen;
  world.spawn_task("chain", 0, 0, TaskProfile{}, Phase::sleep(1.0),
                   [&](Task& task) {
                     seen.push_back(task.phase().kind);
                     switch (seen.size()) {
                       case 1: return Phase::compute(1e9);
                       case 2: return Phase::message(1, 1e9);
                       case 3: return Phase::io(IoKind::kRead, 1e6);
                       default: return Phase::done();
                     }
                   });
  world.run_until(100.0);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], PhaseKind::kSleep);
  EXPECT_EQ(seen[1], PhaseKind::kCompute);
  EXPECT_EQ(seen[2], PhaseKind::kMessage);
  EXPECT_EQ(seen[3], PhaseKind::kIo);
}

TEST(World, IdleTasksWakeOnExternalSetPhase) {
  World world = make_small_world();
  bool woke = false;
  Task* idler = world.spawn_task("idler", 0, 0, TaskProfile{}, Phase::idle(),
                                 [&](Task&) {
                                   woke = true;
                                   return Phase::done();
                                 });
  world.run_until(1.0);
  EXPECT_FALSE(woke);
  idler->set_phase(Phase::sleep(0.5));
  world.update();
  world.run_until(2.0);
  EXPECT_TRUE(woke);
}

TEST(World, MemoryAllocationAdjustsNodeGauge) {
  World world = make_small_world();
  Task* task = world.spawn_task("alloc", 0, 0, TaskProfile{},
                                Phase::sleep(100.0),
                                [](Task&) { return Phase::done(); });
  const double free_before = world.node(0).memory_free();
  EXPECT_TRUE(world.allocate_memory(task, 1e9));
  EXPECT_NEAR(world.node(0).memory_free(), free_before - 1e9, 1.0);
  EXPECT_DOUBLE_EQ(task->allocated_bytes(), 1e9);
}

TEST(World, DefaultOomKillsRequesterAndFreesMemory) {
  NodeConfig config;
  config.memory_bytes = 4.0 * 1024 * 1024 * 1024;
  config.os_base_memory = 1.0 * 1024 * 1024 * 1024;
  World world(config, Topology::star(1, 1e9), FsConfig{});
  Task* hog = world.spawn_task("hog", 0, 0, TaskProfile{}, Phase::sleep(1e6),
                               [](Task&) { return Phase::done(); });
  EXPECT_TRUE(world.allocate_memory(hog, 2.5e9));
  EXPECT_FALSE(world.allocate_memory(hog, 2.5e9));  // would exceed
  EXPECT_TRUE(hog->done());                          // OOM-killed
  EXPECT_NEAR(world.node(0).memory_free(), 3.0 * 1024 * 1024 * 1024, 1e6);
}

TEST(World, CustomOomHandlerInvoked) {
  NodeConfig config;
  config.memory_bytes = 2.0 * 1024 * 1024 * 1024;
  config.os_base_memory = 1.0 * 1024 * 1024 * 1024;
  World world(config, Topology::star(1, 1e9), FsConfig{});
  int oom_calls = 0;
  world.set_oom_handler([&oom_calls](World&, Task&) { ++oom_calls; });
  Task* task = world.spawn_task("t", 0, 0, TaskProfile{}, Phase::sleep(1e6),
                                [](Task&) { return Phase::done(); });
  EXPECT_FALSE(world.allocate_memory(task, 5e9));
  EXPECT_EQ(oom_calls, 1);
  EXPECT_FALSE(task->done());  // our handler chose not to kill
}

TEST(World, KillTaskReleasesResources) {
  World world = make_small_world();
  TaskProfile profile;
  Task* victim = world.spawn_task("victim", 0, 0, profile,
                                  Phase::compute(1e15),
                                  [](Task&) { return Phase::done(); });
  world.allocate_memory(victim, 1e9);
  const double free_before_kill = world.node(0).memory_free();
  world.kill_task(victim);
  EXPECT_TRUE(victim->done());
  EXPECT_NEAR(world.node(0).memory_free(), free_before_kill + 1e9, 1.0);
}

TEST(World, MonitoringCollectsEverySecond) {
  World world = make_small_world();
  world.enable_monitoring(1.0);
  world.spawn_task("burner", 0, 0, TaskProfile{}, Phase::compute(1e15),
                   [](Task&) { return Phase::done(); });
  world.run_until(10.0);
  const auto& store = world.node_store(0);
  const auto& user = store.series({"user", "procstat"});
  EXPECT_GE(user.size(), 10u);
  // Counter grows: one busy core at 100 jiffies/s.
  const auto deltas = user.deltas();
  EXPECT_NEAR(deltas.back(), 100.0, 1.0);
}

TEST(World, MonitoringCoversAllSamplers) {
  World world = make_small_world();
  world.enable_monitoring(1.0);
  world.run_until(3.0);
  const auto& store = world.node_store(1);
  EXPECT_TRUE(store.contains({"user", "procstat"}));
  EXPECT_TRUE(store.contains({"Memfree", "meminfo"}));
  EXPECT_TRUE(store.contains({"pgfault", "vmstat"}));
  EXPECT_TRUE(store.contains({"INST_RETIRED:ANY", "spapiHASW"}));
  EXPECT_TRUE(store.contains(
      {"AR_NIC_NETMON_ORB_EVENT_CNTR_REQ_FLITS", "aries_nic_mmr"}));
}

TEST(World, NicCountersTrackMessageBytes) {
  World world = make_small_world();
  world.spawn_task("sender", 0, 0, TaskProfile{}, Phase::message(1, 5e9),
                   [](Task&) { return Phase::done(); });
  world.run_until(10.0);
  EXPECT_NEAR(world.node(0).counters().nic_tx_bytes, 5e9, 1e3);
  EXPECT_NEAR(world.node(1).counters().nic_rx_bytes, 5e9, 1e3);
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    World world(NodeConfig{}, Topology::two_tier(2, 2, 10e9, 18e9),
                FsConfig{});
    double finish = -1;
    TaskProfile profile;
    profile.working_set_bytes = 30e6;
    world.spawn_task("a", 0, 0, profile, Phase::compute(5e9), [&](Task& t) {
      if (t.phase().kind == PhaseKind::kCompute)
        return Phase::message(2, 1e8);
      finish = 1.0;
      return Phase::done();
    });
    world.spawn_task("b", 0, 0, profile, Phase::compute(3e9),
                     [](Task&) { return Phase::done(); });
    world.run_until(100.0);
    return world.node(0).counters().instructions;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(World, SpawnValidatesPlacement) {
  World world = make_small_world();
  EXPECT_THROW(world.spawn_task("x", 99, 0, TaskProfile{}, Phase::idle(),
                                [](Task&) { return Phase::done(); }),
               InvariantError);
  EXPECT_THROW(world.spawn_task("x", 0, 999, TaskProfile{}, Phase::idle(),
                                [](Task&) { return Phase::done(); }),
               InvariantError);
}

TEST(VoltrinoPreset, MatchesPaperHardware) {
  auto world = make_voltrino_world();
  EXPECT_EQ(world->num_nodes(), 8);
  EXPECT_EQ(world->node(0).config().cores, 32);
  EXPECT_NEAR(world->node(0).config().l3_bytes, 40.0 * 1024 * 1024, 1.0);
  EXPECT_TRUE(world->filesystem().config().dedicated_mds);
}

TEST(ChameleonPreset, MatchesPaperSetup) {
  auto world = make_chameleon_world();
  EXPECT_EQ(world->num_nodes(), 6);
  EXPECT_EQ(world->node(0).config().cores, 24);
  EXPECT_FALSE(world->filesystem().config().dedicated_mds);
}

}  // namespace
}  // namespace hpas::sim
