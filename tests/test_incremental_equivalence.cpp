// Incremental-engine equivalence: the dirty-set rate recomputation and
// lazy counter integration (World's default) must be *byte-identical* to
// the reference full-recompute mode (set_full_recompute(true) /
// HPAS_FULL_RECOMPUTE=1), which re-solves every domain and integrates
// every counter on every event exactly like the original eager loop.
//
// Three layers of evidence, strongest first: the fig05 memleak trace
// (every event, rate, memory and sample record), a mixed scenario that
// keeps all three counter domains (node, network, filesystem) busy at
// once, and a whole sweep output directory (CSVs + traces + summary)
// compared file-by-file.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "runner/grid.hpp"
#include "runner/runner.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

namespace fs = std::filesystem;

namespace {

std::string text_form(const hpas::trace::TraceFile& file) {
  std::ostringstream out;
  hpas::trace::write_text(out, file);
  return out.str();
}

/// The fig05 scenario from the golden-trace pin: a 20 MB/s memory leak on
/// node 0 for 20 simulated seconds, observed for 30 with 1 Hz sampling.
std::string memleak_trace(bool full_recompute) {
  auto world = hpas::sim::make_voltrino_world();
  world->set_full_recompute(full_recompute);
  hpas::trace::TraceCapture capture;
  world->attach_tracer(&capture.tracer());
  world->enable_monitoring(1.0);
  hpas::simanom::inject_memleak(*world, /*node=*/0, /*core=*/0,
                                /*chunk_bytes=*/20.0 * 1024 * 1024,
                                /*chunk_interval_s=*/1.0,
                                /*duration_s=*/20.0);
  world->run_until(30.0);
  return text_form(capture.take());
}

/// All three counter domains at once: membw streaming on node 0 (node
/// domain), netoccupy flows between two nodes (network domain) and
/// metadata clients hammering the MDS (filesystem domain), overlapping in
/// time so phase transitions in one domain interleave with rate
/// recomputes in the others.
std::string mixed_trace(bool full_recompute) {
  auto world = hpas::sim::make_voltrino_world();
  world->set_full_recompute(full_recompute);
  hpas::trace::TraceCapture capture;
  world->attach_tracer(&capture.tracer());
  world->enable_monitoring(0.5);
  hpas::simanom::inject_membw(*world, /*node=*/0, /*core=*/4,
                              /*duration_s=*/12.0, /*intensity=*/0.8);
  hpas::simanom::inject_netoccupy(*world, /*src=*/1, /*dst=*/2,
                                  /*ntasks=*/2,
                                  /*bytes_per_s=*/50.0 * 1024 * 1024,
                                  /*duration_s=*/10.0);
  hpas::simanom::inject_iometadata(*world, /*node=*/3, /*ntasks=*/2,
                                   /*duration_s=*/8.0);
  world->run_until(15.0);
  return text_form(capture.take());
}

TEST(IncrementalEquivalence, MemleakTraceIsByteIdentical) {
  const std::string incremental = memleak_trace(false);
  const std::string full = memleak_trace(true);
  ASSERT_FALSE(incremental.empty());
  EXPECT_EQ(incremental, full)
      << "incremental rate recomputation changed the fig05 trace bytes";
}

TEST(IncrementalEquivalence, MixedDomainTraceIsByteIdentical) {
  const std::string incremental = mixed_trace(false);
  const std::string full = mixed_trace(true);
  ASSERT_FALSE(incremental.empty());
  EXPECT_EQ(incremental, full)
      << "incremental mode diverged with node+network+fs domains active";
}

// --- whole-sweep directory comparison ---------------------------------

hpas::runner::SweepGrid equivalence_grid() {
  // fig08-shaped but shortened: one app, anomalies covering the CPU,
  // memory-bandwidth and network domains, fixed monitoring window.
  hpas::runner::SweepGrid grid;
  grid.name = "equivalence_grid";
  int index = 0;
  for (const char* anomaly : {"none", "membw", "netoccupy", "memleak"}) {
    hpas::runner::ScenarioSpec spec;
    spec.name = "eq_" + std::string(anomaly);
    spec.app = "CoMD";
    spec.anomaly = anomaly;
    spec.duration_s = 10.0;
    spec.sample_period_s = 1.0;
    spec.seed = hpas::runner::derive_scenario_seed(
        11, static_cast<std::uint64_t>(index++));
    grid.scenarios.push_back(spec);
  }
  return grid;
}

std::map<std::string, std::string> read_dir(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    files[entry.path().filename().string()] = bytes.str();
  }
  return files;
}

TEST(IncrementalEquivalence, SweepOutputDirectoryIsByteIdentical) {
  const fs::path base =
      fs::path(::testing::TempDir()) /
      ("hpas_equivalence_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  const fs::path inc_dir = base / "incremental";
  const fs::path full_dir = base / "full";
  fs::remove_all(base);

  // Worlds read HPAS_FULL_RECOMPUTE at construction; single-threaded
  // sweeps keep the setenv/run/unsetenv sequence race-free.
  ::unsetenv("HPAS_FULL_RECOMPUTE");
  const auto incremental = hpas::runner::run_sweep(
      equivalence_grid(), {.threads = 1, .capture_traces = true});
  ASSERT_TRUE(incremental.ok()) << incremental.first_error();
  hpas::runner::write_outputs(incremental, inc_dir.string());

  ::setenv("HPAS_FULL_RECOMPUTE", "1", 1);
  const auto full = hpas::runner::run_sweep(
      equivalence_grid(), {.threads = 1, .capture_traces = true});
  ::unsetenv("HPAS_FULL_RECOMPUTE");
  ASSERT_TRUE(full.ok()) << full.first_error();
  hpas::runner::write_outputs(full, full_dir.string());

  const auto inc_files = read_dir(inc_dir);
  const auto full_files = read_dir(full_dir);
  ASSERT_GT(inc_files.size(), 4u);  // CSVs + traces + summary.json
  ASSERT_EQ(inc_files.size(), full_files.size());
  for (const auto& [name, bytes] : inc_files) {
    const auto it = full_files.find(name);
    ASSERT_NE(it, full_files.end()) << name << " missing from full mode";
    EXPECT_EQ(bytes, it->second)
        << name << " differs between incremental and full recompute";
  }
  fs::remove_all(base);
}

}  // namespace
