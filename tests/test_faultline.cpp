// The faultline battery: schedules are deterministic and byte-stable,
// injected faults behave exactly as specified on the journal edge, crash
// points enumerate the write sequence, and the retry helpers (Backoff,
// accept_backoff_ms) are seedable and bounded.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "faultline/faultline.hpp"
#include "runner/journal.hpp"
#include "server/server.hpp"

namespace {

namespace fl = hpas::faultline;
using hpas::runner::JournalRecord;
using hpas::runner::JournalStatus;
using hpas::runner::JournalWriter;
using hpas::runner::read_journal;

/// Every test leaves the process-wide engine disarmed: a leaked schedule
/// would inject into unrelated tests in this binary.
class FaultlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fl::disarm();
    base_ = std::filesystem::temp_directory_path() /
            ("hpas-faultline-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override {
    fl::disarm();
    std::filesystem::remove_all(base_);
  }

  std::string path(const std::string& name) const {
    return (base_ / name).string();
  }

  std::filesystem::path base_;
};

JournalRecord record(std::uint64_t key, const std::string& name) {
  JournalRecord rec;
  rec.key_hash = key;
  rec.status = JournalStatus::kDone;
  rec.name = name;
  rec.output = name + ".csv";
  rec.csv_crc = 0x12345678;
  return rec;
}

const char* kSchedule = R"({
  "seed": 7,
  "crash_at": -1,
  "crash_domains": ["journal", "cache"],
  "rules": [
    {"domain": "journal", "op": "write", "fault": "short_write",
     "bytes": 5, "every": 2},
    {"domain": "cache", "op": "fsync", "fault": "errno", "errno": "EIO",
     "at": 3},
    {"domain": "socket", "op": "read", "fault": "stall", "stall_ms": 1.5,
     "prob": 0.25, "count": 4}
  ]
})";

TEST_F(FaultlineTest, ScheduleDumpIsAByteStableFixpoint) {
  const fl::FaultSchedule first = fl::FaultSchedule::parse(kSchedule);
  const std::string dump1 = first.dump();
  const fl::FaultSchedule second = fl::FaultSchedule::parse(dump1);
  const std::string dump2 = second.dump();
  EXPECT_EQ(dump1, dump2);
  // And the canonical form is stable through a third generation.
  EXPECT_EQ(dump2, fl::FaultSchedule::parse(dump2).dump());
}

TEST_F(FaultlineTest, ScheduleRoundTripPreservesEveryField) {
  const fl::FaultSchedule s =
      fl::FaultSchedule::parse(fl::FaultSchedule::parse(kSchedule).dump());
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.crash_at, -1);
  ASSERT_EQ(s.rules.size(), 3u);
  EXPECT_EQ(s.rules[0].kind, fl::FaultKind::kShortWrite);
  EXPECT_EQ(s.rules[0].bytes, 5u);
  EXPECT_EQ(s.rules[0].every, 2);
  EXPECT_EQ(s.rules[1].kind, fl::FaultKind::kErrno);
  EXPECT_EQ(s.rules[1].err, EIO);
  EXPECT_EQ(s.rules[1].at, 3);
  EXPECT_EQ(s.rules[1].count, 1);  // `at` rules default to firing once
  EXPECT_EQ(s.rules[2].kind, fl::FaultKind::kStall);
  EXPECT_DOUBLE_EQ(s.rules[2].prob, 0.25);
  EXPECT_EQ(s.rules[2].count, 4);
}

TEST_F(FaultlineTest, RuleNeedsExactlyOneTrigger) {
  EXPECT_THROW(fl::FaultSchedule::parse(
                   R"({"rules":[{"domain":"journal","op":"write",
                       "fault":"crash"}]})"),
               hpas::ConfigError);
  EXPECT_THROW(fl::FaultSchedule::parse(
                   R"({"rules":[{"domain":"journal","op":"write",
                       "fault":"crash","at":1,"every":2}]})"),
               hpas::ConfigError);
}

TEST_F(FaultlineTest, UnarmedWrappersPassThrough) {
  EXPECT_FALSE(fl::armed());
  const std::string journal = path("plain.journal");
  {
    JournalWriter writer(journal, true);
    writer.append(record(1, "plain"));
  }
  const auto got = read_journal(journal);
  ASSERT_EQ(got.records.size(), 1u);
  EXPECT_EQ(got.records[0].name, "plain");
  EXPECT_EQ(fl::stats().calls, 0u);
}

TEST_F(FaultlineTest, ShortWritesExerciseRetryLoopsWithoutChangingBytes) {
  const std::string plain = path("plain.journal");
  {
    JournalWriter writer(plain, true);
    writer.append(record(1, "alpha"));
    writer.append(record(2, "beta"));
  }

  // Cap every journal write to 3 bytes: the writer's retry loop must
  // still land byte-identical content, just in many more calls.
  fl::FaultSchedule schedule;
  schedule.rules.push_back({.domain = fl::Domain::kJournal,
                            .op = fl::Op::kWrite,
                            .kind = fl::FaultKind::kShortWrite,
                            .bytes = 3,
                            .every = 1});
  fl::arm(schedule);
  const std::string faulted = path("faulted.journal");
  {
    JournalWriter writer(faulted, true);
    writer.append(record(1, "alpha"));
    writer.append(record(2, "beta"));
  }
  EXPECT_GT(fl::stats().injected, 0u);
  fl::disarm();

  std::ifstream a(plain, std::ios::binary), b(faulted, std::ios::binary);
  std::stringstream abuf, bbuf;
  abuf << a.rdbuf();
  bbuf << b.rdbuf();
  EXPECT_EQ(abuf.str(), bbuf.str());
}

TEST_F(FaultlineTest, InjectedErrnoFailsTheJournalAppend) {
  fl::FaultSchedule schedule;
  schedule.rules.push_back({.domain = fl::Domain::kJournal,
                            .op = fl::Op::kWrite,
                            .kind = fl::FaultKind::kErrno,
                            .err = ENOSPC,
                            .at = 1});  // header is write #0
  fl::arm(schedule);
  JournalWriter writer(path("enospc.journal"), true);
  EXPECT_THROW(writer.append(record(1, "doomed")), hpas::SystemError);
}

TEST_F(FaultlineTest, InjectedFsyncFailureSurfaces) {
  fl::FaultSchedule schedule;
  schedule.rules.push_back({.domain = fl::Domain::kJournal,
                            .op = fl::Op::kFsync,
                            .kind = fl::FaultKind::kErrno,
                            .err = EIO,
                            .at = 1});  // header fsync is #0
  fl::arm(schedule);
  JournalWriter writer(path("eio.journal"), true);
  EXPECT_THROW(writer.append(record(1, "doomed")), hpas::SystemError);
}

TEST_F(FaultlineTest, EintrStormIsBoundedByCountAndTheWriteSucceeds) {
  fl::FaultSchedule schedule;
  schedule.rules.push_back({.domain = fl::Domain::kJournal,
                            .op = fl::Op::kWrite,
                            .kind = fl::FaultKind::kErrno,
                            .err = EINTR,
                            .every = 1,
                            .count = 25});
  fl::arm(schedule);
  const std::string journal = path("eintr.journal");
  {
    JournalWriter writer(journal, true);
    writer.append(record(1, "stormy"));
  }
  EXPECT_EQ(fl::stats().injected, 25u);
  fl::disarm();
  const auto got = read_journal(journal);
  ASSERT_EQ(got.records.size(), 1u);
  EXPECT_EQ(got.records[0].name, "stormy");
}

TEST_F(FaultlineTest, InjectionLogIsByteEqualAcrossIdenticalRuns) {
  const fl::FaultSchedule schedule = fl::FaultSchedule::parse(R"({
    "seed": 99,
    "rules": [
      {"domain": "journal", "op": "write", "fault": "short_write",
       "bytes": 4, "prob": 0.5}
    ]
  })");

  auto run_once = [&] {
    fl::arm(schedule);
    JournalWriter writer(path("log.journal"), true);
    writer.append(record(1, "one"));
    writer.append(record(2, "two"));
    writer.append(record(3, "three"));
    auto log = fl::injection_log();
    fl::disarm();
    return log;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(FaultlineTest, InjectionLogLinesNameTheEdgeAndFault) {
  fl::FaultSchedule schedule;
  schedule.rules.push_back({.domain = fl::Domain::kJournal,
                            .op = fl::Op::kWrite,
                            .kind = fl::FaultKind::kShortWrite,
                            .bytes = 5,
                            .at = 3});
  fl::arm(schedule);
  JournalWriter writer(path("named.journal"), true);
  writer.append(record(1, "a"));
  writer.append(record(2, "b"));
  writer.append(record(3, "c"));
  const auto log = fl::injection_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "journal/write#3 short_write bytes=5");
}

TEST_F(FaultlineTest, CrashPointsCountTwoPerWriteOnePerFsync) {
  fl::FaultSchedule schedule;  // no rules, default crash domains
  fl::arm(schedule);
  {
    JournalWriter writer(path("count.journal"), true);
    writer.append(record(1, "counted"));
  }
  // Header: write + fsync = 3 points; one record: write + fsync = 3.
  EXPECT_EQ(fl::crash_points_passed(), 6u);
}

TEST_F(FaultlineTest, CrashDomainsMaskExcludesOtherEdges) {
  fl::FaultSchedule schedule;
  schedule.crash_domains = 1u << static_cast<unsigned>(fl::Domain::kCache);
  fl::arm(schedule);
  {
    JournalWriter writer(path("masked.journal"), true);
    writer.append(record(1, "masked"));
  }
  EXPECT_EQ(fl::crash_points_passed(), 0u);
}

TEST_F(FaultlineTest, TornCrashKillsTheProcessMidWrite) {
  const std::string journal = path("torn.journal");
  // A full single-record journal for reference.
  {
    JournalWriter writer(journal, true);
    writer.append(record(1, "torn"));
  }
  const auto whole = std::filesystem::file_size(journal);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die mid-way through the record frame (journal write #1),
    // having transferred only 4 bytes of it.
    fl::FaultSchedule schedule;
    schedule.rules.push_back({.domain = fl::Domain::kJournal,
                              .op = fl::Op::kWrite,
                              .kind = fl::FaultKind::kTornCrash,
                              .bytes = 4,
                              .at = 1});
    fl::arm(schedule);
    JournalWriter writer(journal, true);
    writer.append(record(1, "torn"));
    ::_exit(0);  // unreachable: the fault kills us first
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 137);

  // The file holds the header plus a 4-byte torn tail -- and the reader
  // treats that as the expected post-crash state, not an error.
  EXPECT_LT(std::filesystem::file_size(journal), whole);
  const auto got = read_journal(journal);
  EXPECT_EQ(got.records.size(), 0u);
  EXPECT_EQ(got.dropped_frames, 1u);
}

TEST_F(FaultlineTest, CrashAtKillsAtTheChosenPoint) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    fl::FaultSchedule schedule;
    schedule.crash_at = 0;  // the very first journal write
    fl::arm(schedule);
    JournalWriter writer(path("crash0.journal"), true);
    ::_exit(0);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 137);
  // Crash before the first write: nothing landed at all.
  EXPECT_FALSE(std::filesystem::exists(path("crash0.journal")) &&
               std::filesystem::file_size(path("crash0.journal")) > 0);
}

TEST(BackoffTest, SameSeedSameDelaySequence) {
  hpas::Backoff a(50.0, 2000.0, 11);
  hpas::Backoff b(50.0, 2000.0, 11);
  for (int i = 0; i < 12; ++i) EXPECT_DOUBLE_EQ(a.next_ms(), b.next_ms());
  EXPECT_EQ(a.attempts(), 12u);
}

TEST(BackoffTest, DelaysAreJitteredDoublingUnderTheCap) {
  hpas::Backoff backoff(50.0, 2000.0, 3);
  double ceiling = 50.0;
  for (int i = 0; i < 20; ++i) {
    const double d = backoff.next_ms();
    // Equal jitter: each delay lands in [ceiling/2, ceiling].
    EXPECT_GE(d, ceiling / 2.0);
    EXPECT_LE(d, ceiling);
    EXPECT_LE(d, 2000.0);
    ceiling = std::min(ceiling * 2.0, 2000.0);
  }
}

TEST(BackoffTest, ResetRestartsTheLadder) {
  hpas::Backoff a(50.0, 2000.0, 5);
  hpas::Backoff b(50.0, 2000.0, 5);
  (void)a.next_ms();
  (void)a.next_ms();
  a.reset();
  EXPECT_EQ(a.attempts(), 0u);
  (void)b.next_ms();
  (void)b.next_ms();
  // After reset the exponent restarts at the base even though the jitter
  // stream continues: the delay must be back under the base.
  EXPECT_LE(a.next_ms(), 50.0);
  EXPECT_GT(b.next_ms(), 50.0);
}

TEST(AcceptBackoffTest, FdExhaustionBacksOffOtherErrnosDoNot) {
  EXPECT_GT(hpas::server::accept_backoff_ms(EMFILE), 0);
  EXPECT_GT(hpas::server::accept_backoff_ms(ENFILE), 0);
  EXPECT_GT(hpas::server::accept_backoff_ms(ENOBUFS), 0);
  EXPECT_GT(hpas::server::accept_backoff_ms(ENOMEM), 0);
  EXPECT_EQ(hpas::server::accept_backoff_ms(EINTR), 0);
  EXPECT_EQ(hpas::server::accept_backoff_ms(ECONNABORTED), 0);
  EXPECT_EQ(hpas::server::accept_backoff_ms(0), 0);
}

}  // namespace
