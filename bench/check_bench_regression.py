#!/usr/bin/env python3
"""Gate BENCH_engine.json against the checked-in baseline.

Compares the throughput metrics of a fresh microbench_engine run against
bench/BENCH_engine_baseline.json and fails (exit 1) when any of them
regressed by more than the allowed fraction (default 30%, per the CI
bench-smoke job). Machine-independent contracts (zero allocations on the
warm path, the >=3x incremental speedup) are enforced by the benchmark
binary itself; this script only guards against throughput drift.

Usage: check_bench_regression.py CURRENT.json [BASELINE.json] [--max-regression 0.30]
"""

import json
import sys
from pathlib import Path

# (path into the JSON document, human label, hardware-gated?)
# Hardware-gated rows measure parallel shard throughput, which is
# meaningless below kMinHwThreadsForShardGates hardware threads: on such
# machines they are reported as explicitly *skipped*, never as a silent
# pass, so CI logs distinguish "gate held" from "gate never armed".
METRICS = [
    (("engine", "events_per_sec"), "engine events/sec", False),
    (("world", "incremental_events_per_sec"),
     "world incremental events/sec", False),
    (("world", "speedup"), "incremental vs full-recompute speedup", False),
    # Sharded 1k-node topology: the serial-shard throughput tracks the
    # machine like the metrics above; the multi-shard entries guard the
    # fork/join path against overhead creep, but only once the machine has
    # the cores for the fan-out to be real parallelism. Absolute parallel
    # *speedup* is additionally gated inside the benchmark binary (see the
    # sharded section's "gates_skipped" marker).
    (("sharded", "shards_1", "agg_ops_per_sec"),
     "sharded dragonfly 1-shard aggregate ops/sec", False),
    (("sharded", "shards_4", "agg_ops_per_sec"),
     "sharded dragonfly 4-shard aggregate ops/sec", True),
    (("sharded", "shards_8", "agg_ops_per_sec"),
     "sharded dragonfly 8-shard aggregate ops/sec", True),
]

MIN_HW_THREADS_FOR_SHARD_GATES = 8


def lookup(doc, path):
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    max_regression = 0.30
    for i, arg in enumerate(argv):
        if arg == "--max-regression" and i + 1 < len(argv):
            max_regression = float(argv[i + 1])
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path = Path(args[0])
    baseline_path = (
        Path(args[1])
        if len(args) > 1
        else Path(__file__).resolve().parent / "BENCH_engine_baseline.json"
    )

    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    hw_threads = lookup(current, ("sharded", "hw_threads"))
    shard_gates_armed = (
        hw_threads is not None
        and hw_threads >= MIN_HW_THREADS_FOR_SHARD_GATES
    )

    failures = 0
    skipped = 0
    for path, label, hardware_gated in METRICS:
        if hardware_gated and not shard_gates_armed:
            skipped += 1
            print(f"skip  {label}: skipped (hardware-gated: "
                  f"{hw_threads if hw_threads is not None else '?'} "
                  f"hw threads, need {MIN_HW_THREADS_FOR_SHARD_GATES})")
            continue
        cur = lookup(current, path)
        base = lookup(baseline, path)
        if cur is None or base is None:
            print(f"FAIL  {label}: missing from "
                  f"{'current' if cur is None else 'baseline'} file")
            failures += 1
            continue
        floor = base * (1.0 - max_regression)
        status = "ok  " if cur >= floor else "FAIL"
        print(f"{status}  {label}: current {cur:.4g}, baseline {base:.4g} "
              f"(floor {floor:.4g})")
        if cur < floor:
            failures += 1

    if failures:
        print(f"\n{failures} metric(s) regressed more than "
              f"{max_regression:.0%} vs {baseline_path}", file=sys.stderr)
        return 1
    if skipped:
        # Honest summary: a green run with skipped rows is narrower than a
        # green run with every gate armed (mirrors the benchmark binary's
        # nonzero sharded.gates_skipped marker).
        print(f"\nall armed metrics within the regression budget; "
              f"{skipped} row(s) skipped (hardware-gated)")
        return 0
    print("\nall metrics within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
