#!/usr/bin/env python3
"""Gate BENCH_*.json runs against the checked-in baseline.

Compares one or more runs of a microbenchmark (microbench_engine or
microbench_dataset; the suite is read from the file's top-level "suite"
marker) against the corresponding bench/BENCH_<suite>_baseline.json and
fails (exit 1) on regression beyond the allowed fraction (default 30%,
per the CI bench-smoke job). Machine-independent contracts (zero
allocations, bit-equality, flat memory) are enforced by the benchmark
binaries themselves; this script only guards against drift.

Given several runs of the same suite, the gate compares the *median*
with a variance bar: a metric fails only when its median is beyond the
allowed bound by more than one sample standard deviation. That keeps a
single noisy repeat from failing CI while still catching real drift --
the medians-with-variance-bars companion to bench_stats.py's CV gate.
With a single run the bar is zero and the comparison is the plain
point-estimate floor/ceiling.

Metrics are directional: throughput regresses downward (gated by a
floor), footprint metrics such as peak RSS regress upward (gated by a
ceiling).

Usage: check_bench_regression.py RUN.json [RUN2.json ...]
           [--baseline PATH] [--suite engine|dataset]
           [--max-regression 0.30]
"""

import json
import statistics
import sys
from pathlib import Path

# (path into the JSON document, human label, hardware-gated?, direction)
# direction "higher" = bigger is better (floor gate); "lower" = smaller
# is better (ceiling gate).
# Hardware-gated rows measure parallel shard throughput, which is
# meaningless below MIN_HW_THREADS_FOR_SHARD_GATES hardware threads: on
# such machines they are reported as explicitly *skipped*, never as a
# silent pass, so CI logs distinguish "gate held" from "gate never
# armed".
METRICS_BY_SUITE = {
    "engine": [
        (("engine", "events_per_sec"), "engine events/sec", False, "higher"),
        (("world", "incremental_events_per_sec"),
         "world incremental events/sec", False, "higher"),
        (("world", "speedup"), "incremental vs full-recompute speedup",
         False, "higher"),
        # Sharded 1k-node topology: the serial-shard throughput tracks the
        # machine like the metrics above; the multi-shard entries guard the
        # fork/join path against overhead creep, but only once the machine
        # has the cores for the fan-out to be real parallelism. Absolute
        # parallel *speedup* is additionally gated inside the benchmark
        # binary (see the sharded section's "gates_skipped" marker).
        (("sharded", "shards_1", "agg_ops_per_sec"),
         "sharded dragonfly 1-shard aggregate ops/sec", False, "higher"),
        (("sharded", "shards_4", "agg_ops_per_sec"),
         "sharded dragonfly 4-shard aggregate ops/sec", True, "higher"),
        (("sharded", "shards_8", "agg_ops_per_sec"),
         "sharded dragonfly 8-shard aggregate ops/sec", True, "higher"),
        (("peak_rss_bytes",), "peak RSS bytes", False, "lower"),
    ],
    "dataset": [
        (("extractor", "samples_per_sec"),
         "streaming extractor samples/sec", False, "higher"),
        (("factory", "rows_per_sec"), "factory rows/sec", False, "higher"),
        # Deterministic row framing: 24-byte shard headers amortized over
        # the rows plus 8 + 12 + 8F bytes per frame. Growth means the
        # on-disk format got fatter.
        (("factory", "bytes_per_row"), "shard bytes/row", False, "lower"),
        (("factory", "peak_buffered_values"),
         "peak buffered values per row", False, "lower"),
        (("peak_rss_bytes",), "peak RSS bytes", False, "lower"),
    ],
}

MIN_HW_THREADS_FOR_SHARD_GATES = 8


def lookup(doc, path):
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def main(argv):
    run_paths = []
    baseline_path = None
    suite = None
    max_regression = 0.30
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--max-regression" and i + 1 < len(argv):
            max_regression = float(argv[i + 1])
            i += 2
        elif arg == "--baseline" and i + 1 < len(argv):
            baseline_path = Path(argv[i + 1])
            i += 2
        elif arg == "--suite" and i + 1 < len(argv):
            suite = argv[i + 1]
            i += 2
        elif arg.startswith("--"):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        else:
            run_paths.append(Path(arg))
            i += 1
    if not run_paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    runs = [json.loads(p.read_text()) for p in run_paths]
    if suite is None:
        suite = runs[0].get("suite", "engine")
    if suite not in METRICS_BY_SUITE:
        print(f"unknown suite {suite!r} (have: "
              f"{', '.join(sorted(METRICS_BY_SUITE))})", file=sys.stderr)
        return 2
    for path, run in zip(run_paths, runs):
        run_suite = run.get("suite", "engine")
        if run_suite != suite:
            print(f"{path}: suite {run_suite!r} does not match {suite!r}",
                  file=sys.stderr)
            return 2
    if baseline_path is None:
        baseline_path = (Path(__file__).resolve().parent
                         / f"BENCH_{suite}_baseline.json")
    baseline = json.loads(baseline_path.read_text())

    hw_threads = lookup(runs[0], ("sharded", "hw_threads"))
    shard_gates_armed = (
        hw_threads is not None
        and hw_threads >= MIN_HW_THREADS_FOR_SHARD_GATES
    )

    n = len(runs)
    failures = 0
    skipped = 0
    for path, label, hardware_gated, direction in METRICS_BY_SUITE[suite]:
        if hardware_gated and not shard_gates_armed:
            skipped += 1
            print(f"skip  {label}: skipped (hardware-gated: "
                  f"{hw_threads if hw_threads is not None else '?'} "
                  f"hw threads, need {MIN_HW_THREADS_FOR_SHARD_GATES})")
            continue
        values = [lookup(run, path) for run in runs]
        base = lookup(baseline, path)
        if any(v is None for v in values) or base is None:
            print(f"FAIL  {label}: missing from "
                  f"{'baseline' if base is None else 'a current run'}")
            failures += 1
            continue
        median = statistics.median(values)
        sigma = statistics.stdev(values) if n > 1 else 0.0
        if direction == "higher":
            bound = base * (1.0 - max_regression)
            ok = median >= bound - sigma
            bound_name = "floor"
        else:
            bound = base * (1.0 + max_regression)
            ok = median <= bound + sigma
            bound_name = "ceiling"
        bar = f" +/- {sigma:.3g} over {n} runs" if n > 1 else ""
        status = "ok  " if ok else "FAIL"
        print(f"{status}  {label}: median {median:.4g}{bar}, "
              f"baseline {base:.4g} ({bound_name} {bound:.4g})")
        if not ok:
            failures += 1

    if failures:
        print(f"\n{failures} metric(s) regressed more than "
              f"{max_regression:.0%} vs {baseline_path}", file=sys.stderr)
        return 1
    if skipped:
        # Honest summary: a green run with skipped rows is narrower than a
        # green run with every gate armed (mirrors the benchmark binary's
        # nonzero sharded.gates_skipped marker).
        print(f"\nall armed metrics within the regression budget; "
              f"{skipped} row(s) skipped (hardware-gated)")
        return 0
    print("\nall metrics within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
