#!/usr/bin/env python3
"""Gate BENCH_engine.json against the checked-in baseline.

Compares the throughput metrics of a fresh microbench_engine run against
bench/BENCH_engine_baseline.json and fails (exit 1) when any of them
regressed by more than the allowed fraction (default 30%, per the CI
bench-smoke job). Machine-independent contracts (zero allocations on the
warm path, the >=3x incremental speedup) are enforced by the benchmark
binary itself; this script only guards against throughput drift.

Usage: check_bench_regression.py CURRENT.json [BASELINE.json] [--max-regression 0.30]
"""

import json
import sys
from pathlib import Path

# (path into the JSON document, human label)
METRICS = [
    (("engine", "events_per_sec"), "engine events/sec"),
    (("world", "incremental_events_per_sec"), "world incremental events/sec"),
    (("world", "speedup"), "incremental vs full-recompute speedup"),
    # Sharded 1k-node topology: the serial-shard throughput tracks the
    # machine like the metrics above; the multi-shard entries guard the
    # fork/join path against overhead creep. Absolute parallel *speedup*
    # is hardware-gated inside the benchmark binary, not here.
    (("sharded", "shards_1", "agg_ops_per_sec"),
     "sharded dragonfly 1-shard aggregate ops/sec"),
    (("sharded", "shards_4", "agg_ops_per_sec"),
     "sharded dragonfly 4-shard aggregate ops/sec"),
    (("sharded", "shards_8", "agg_ops_per_sec"),
     "sharded dragonfly 8-shard aggregate ops/sec"),
]


def lookup(doc, path):
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    max_regression = 0.30
    for i, arg in enumerate(argv):
        if arg == "--max-regression" and i + 1 < len(argv):
            max_regression = float(argv[i + 1])
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path = Path(args[0])
    baseline_path = (
        Path(args[1])
        if len(args) > 1
        else Path(__file__).resolve().parent / "BENCH_engine_baseline.json"
    )

    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    failures = 0
    for path, label in METRICS:
        cur = lookup(current, path)
        base = lookup(baseline, path)
        if cur is None or base is None:
            print(f"FAIL  {label}: missing from "
                  f"{'current' if cur is None else 'baseline'} file")
            failures += 1
            continue
        floor = base * (1.0 - max_regression)
        status = "ok  " if cur >= floor else "FAIL"
        print(f"{status}  {label}: current {cur:.4g}, baseline {base:.4g} "
              f"(floor {floor:.4g})")
        if cur < floor:
            failures += 1

    if failures:
        print(f"\n{failures} metric(s) regressed more than "
              f"{max_regression:.0%} vs {baseline_path}", file=sys.stderr)
        return 1
    print("\nall metrics within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
