// Figure 7: impact of the I/O anomalies on IOR, on the Chameleon-like NFS
// setup (one storage server, single disk, no dedicated metadata server).
//
// Paper setup: IOR on one client node; iometadata or iobandwidth runs on
// four other nodes. Paper shape: iobandwidth clogs the disk and cuts
// IOR's write/read bandwidth hardest; iometadata also reduces bandwidth
// (metadata ops eat disk time on this MDS-less filesystem) but less.
#include <cstdio>
#include <string>
#include <utility>

#include "apps/ior.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

struct IorResult {
  double write_mbs;
  double access_ops;
  double read_mbs;
};

IorResult run_ior(const std::string& anomaly) {
  auto world = hpas::sim::make_chameleon_world();
  // Anomalies on nodes 1..4. The paper ran 48 instances per node; our
  // filesystem model shares service max-min fairly *per client*, whereas
  // a real NFS server keeps favouring an established stream, so we use 2
  // clients per node to land in the paper's observed contention ratio
  // (the model's share is 1/(clients+1) exactly).
  for (int node = 1; node <= 4; ++node) {
    if (anomaly == "iometadata") {
      hpas::simanom::inject_iometadata(*world, node, /*ntasks=*/2,
                                       /*duration=*/1e6);
    } else if (anomaly == "iobandwidth") {
      hpas::simanom::inject_iobandwidth(*world, node, /*ntasks=*/2,
                                        64.0 * 1024 * 1024, /*duration=*/1e6);
    }
  }
  hpas::apps::IorBench ior(*world, {.node = 0,
                                    .write_bytes = 512.0 * 1024 * 1024,
                                    .metadata_ops = 3000.0,
                                    .read_bytes = 512.0 * 1024 * 1024});
  ior.run_to_completion();
  return {ior.write_rate() / 1e6, ior.access_rate(), ior.read_rate() / 1e6};
}

}  // namespace

int main() {
  std::printf(
      "== Figure 7: I/O anomaly impact on IOR (Chameleon NFS) ==\n"
      "paper shape: iobandwidth reduces write/read most; iometadata also\n"
      "hurts (no dedicated MDS); access (metadata) rate collapses under\n"
      "iometadata\n\n");
  std::printf("%-14s %14s %14s %14s\n", "anomaly", "write MB/s",
              "access ops/s", "read MB/s");
  const IorResult none = run_ior("none");
  const IorResult iobw = run_ior("iobandwidth");
  const IorResult iomd = run_ior("iometadata");
  for (const auto& [name, r] :
       {std::pair<const char*, const IorResult&>{"none", none},
        {"iobandwidth", iobw},
        {"iometadata", iomd}}) {
    std::printf("%-14s %14.1f %14.1f %14.1f\n", name, r.write_mbs,
                r.access_ops, r.read_mbs);
  }

  // Shape: iobandwidth hurts bandwidth most; iometadata also hurts
  // (shared disk, no dedicated MDS) but less; iometadata crushes the
  // metadata (access) rate hardest.
  const bool shape_ok = iobw.write_mbs < iomd.write_mbs &&
                        iomd.write_mbs < none.write_mbs &&
                        iobw.read_mbs < iomd.read_mbs &&
                        iomd.read_mbs < none.read_mbs &&
                        iomd.access_ops < iobw.access_ops &&
                        iobw.access_ops < none.access_ops;
  std::printf("shape check: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
