// Engine + incremental-recompute microbenchmark. Emits BENCH_engine.json:
//
//   engine       raw schedule/fire throughput of a warm Simulator, plus
//                the heap allocations per event in that loop -- asserted
//                to be exactly zero (EventFn small-buffer closures, slot
//                reuse, vector-heap with stable capacity);
//   world        phase-completion events/sec of an N-node scenario under
//                the default incremental engine vs HPAS_FULL_RECOMPUTE
//                reference mode, with the speedup recorded (the CI gate
//                and the acceptance criterion read both numbers);
//   sharded      events/s and aggregate ops/s (epochs x resident tasks)
//                of the 1k-node dragonfly preset at 1/2/4/8 engine
//                shards; the >=3x-at-8-shards and >=50M-agg-ops/s gates
//                only arm on machines with >=8 hardware threads;
//   rate_solver  microseconds per full rate recompute at 1..64 nodes;
//   sweep        wall-clock seconds for a small in-process sweep grid in
//                both modes.
//
// Exit status is non-zero when a hard contract fails (allocations on the
// warm path, or incremental slower than 3x the reference mode), so the
// bench-smoke CI job doubles as a regression gate even before comparing
// against the checked-in baseline.
//
// Usage: microbench_engine [--out PATH] [--quick]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/peak_rss.hpp"
#include "runner/grid.hpp"
#include "runner/runner.hpp"
#include "sim/cluster.hpp"
#include "sim/engine/simulator.hpp"
#include "sim/network.hpp"
#include "sim/world.hpp"

// --- global allocation counter ------------------------------------------
// Every path into the heap funnels through these replaceable operators;
// the bench snapshots the counter around warm loops to prove the common
// scheduling path performs no per-event allocation.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- raw engine throughput ----------------------------------------------

/// Self-rescheduling event chain: each fire schedules the next link with
/// an 8-byte [this] capture, the exact shape of the World's completion
/// and sampling events.
struct Chain {
  hpas::sim::Simulator* sim;
  double period;
  std::uint64_t* fired;
  void fire() {
    ++*fired;
    sim->schedule_in(period, [this] { fire(); });
  }
};

struct EngineResult {
  double events_per_sec = 0.0;
  std::uint64_t allocs = 0;  ///< heap allocations across the warm loop
  std::uint64_t events = 0;
};

EngineResult bench_engine_raw(std::uint64_t events) {
  hpas::sim::Simulator sim;
  std::uint64_t fired = 0;
  std::vector<Chain> chains(64);
  for (std::size_t i = 0; i < chains.size(); ++i) {
    chains[i] = Chain{&sim, 1e-4 * static_cast<double>(i + 1), &fired};
    sim.schedule_in(chains[i].period, [c = &chains[i]] { c->fire(); });
  }
  // Warm-up: let the heap vector and slot map reach steady-state size.
  while (fired < 10000)
    if (!sim.step()) break;

  const std::uint64_t start_allocs =
      g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t target = fired + events;
  const auto start = Clock::now();
  while (fired < target)
    if (!sim.step()) break;
  const double wall = seconds_since(start);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - start_allocs;
  return {static_cast<double>(events) / wall, allocs, events};
}

// --- world scenario throughput ------------------------------------------

hpas::sim::FsConfig bench_fs() {
  return {.metadata_ops_per_s = 30000.0,
          .disk_write_bw = 5.0e9,
          .disk_read_bw = 5.5e9,
          .dedicated_mds = true,
          .metadata_disk_cost_s = 0.0};
}

/// N nodes, one compute task per node cycling short staggered phases
/// forever: every completion touches exactly one node, which is the case
/// the dirty-set recomputation is built for (and the reference mode
/// re-solves all N nodes plus network plus filesystem on).
struct WorldResult {
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;  ///< heap allocations over the measured run
  double wall_s = 0.0;
};

WorldResult bench_world(int nodes, bool full_recompute, double sim_seconds) {
  hpas::sim::World world(hpas::sim::NodeConfig{},
                         hpas::sim::Topology::star(nodes, 10.0e9),
                         bench_fs());
  world.set_full_recompute(full_recompute);
  std::uint64_t completions = 0;
  for (int i = 0; i < nodes; ++i) {
    hpas::sim::TaskProfile profile;
    profile.working_set_bytes = 256.0 * 1024;
    const double work =
        2.0e6 * (1.0 + 0.05 * static_cast<double>(i));  // ~1 ms phases
    world.spawn_task("bench" + std::to_string(i), i, 0, profile,
                     hpas::sim::Phase::compute(work),
                     [&completions, work](hpas::sim::Task&) {
                       ++completions;
                       return hpas::sim::Phase::compute(work);
                     });
  }
  // Warm-up: populate every scratch buffer and the chunk log capacity.
  world.run_until(0.05);
  const std::uint64_t warm_completions = completions;
  const std::uint64_t start_allocs =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  world.run_until(0.05 + sim_seconds);
  const double wall = seconds_since(start);
  WorldResult r;
  r.events = completions - warm_completions;
  r.allocs = g_alloc_count.load(std::memory_order_relaxed) - start_allocs;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.wall_s = wall;
  return r;
}

// --- sharded 1k-node topology throughput ---------------------------------

/// The sharded-executor benchmark: the dragonfly1k preset (1024 nodes)
/// with one cycling compute task per node, run at 1/2/4/8 engine shards.
/// Every epoch advances all ~1024 tasks and re-solves the dirty node
/// domain, so the honest work metric is *aggregate ops/s* = epochs x
/// resident tasks / wall -- the per-event task-advance operations the
/// shards split between them. events/s alone would under-credit a large
/// topology, where one event means a thousand task advances.
struct ShardedResult {
  double events_per_sec = 0.0;
  double agg_ops_per_sec = 0.0;
  std::uint64_t epochs = 0;
  std::uint64_t tasks = 0;
};

ShardedResult bench_sharded(int shards, double sim_seconds) {
  auto world = hpas::sim::make_dragonfly_world();
  world->set_shards(shards);
  const int nodes = world->num_nodes();
  for (int i = 0; i < nodes; ++i) {
    hpas::sim::TaskProfile profile;
    profile.working_set_bytes = 256.0 * 1024;
    const double work =
        2.0e7 * (1.0 + 0.001 * static_cast<double>(i));  // ~10 ms phases
    world->spawn_task("shard" + std::to_string(i), i, 0, profile,
                      hpas::sim::Phase::compute(work),
                      [work](hpas::sim::Task&) {
                        return hpas::sim::Phase::compute(work);
                      });
  }
  world->run_until(0.02);  // warm scratch buffers and the shard pool
  const std::uint64_t epochs0 = world->simulator().epochs();
  const auto start = Clock::now();
  world->run_until(0.02 + sim_seconds);
  const double wall = seconds_since(start);
  ShardedResult r;
  r.epochs = world->simulator().epochs() - epochs0;
  r.tasks = static_cast<std::uint64_t>(nodes);
  r.events_per_sec = static_cast<double>(r.epochs) / wall;
  r.agg_ops_per_sec =
      static_cast<double>(r.epochs * r.tasks) / wall;
  return r;
}

// --- rate-solver scaling -------------------------------------------------

double bench_rate_solver_us(int nodes, int iterations) {
  hpas::sim::World world(hpas::sim::NodeConfig{},
                         hpas::sim::Topology::star(nodes, 10.0e9),
                         bench_fs());
  for (int i = 0; i < nodes; ++i) {
    hpas::sim::TaskProfile profile;
    world.spawn_task("solve" + std::to_string(i), i, 0, profile,
                     hpas::sim::Phase::compute(1.0e15),
                     [](hpas::sim::Task&) { return hpas::sim::Phase::done(); });
  }
  world.update();  // warm scratch
  const auto start = Clock::now();
  for (int k = 0; k < iterations; ++k) world.update();
  return seconds_since(start) / static_cast<double>(iterations) * 1e6;
}

// --- in-process sweep wall time -----------------------------------------

hpas::runner::SweepGrid bench_grid(double duration_s) {
  hpas::runner::SweepGrid grid;
  grid.name = "bench_grid";
  int index = 0;
  for (const char* anomaly : {"none", "membw", "netoccupy", "memleak"}) {
    hpas::runner::ScenarioSpec spec;
    spec.name = "bench_" + std::string(anomaly);
    spec.app = "CoMD";
    spec.anomaly = anomaly;
    spec.duration_s = duration_s;
    spec.sample_period_s = 1.0;
    spec.run_to_completion = true;  // fig08 semantics: ~200 sim-seconds
    spec.seed = hpas::runner::derive_scenario_seed(
        5, static_cast<std::uint64_t>(index++));
    grid.scenarios.push_back(spec);
  }
  return grid;
}

double bench_sweep_wall(double duration_s, bool full_recompute) {
  if (full_recompute)
    ::setenv("HPAS_FULL_RECOMPUTE", "1", 1);
  else
    ::unsetenv("HPAS_FULL_RECOMPUTE");
  const auto start = Clock::now();
  const auto result =
      hpas::runner::run_sweep(bench_grid(duration_s), {.threads = 1});
  ::unsetenv("HPAS_FULL_RECOMPUTE");
  if (!result.ok()) {
    std::fprintf(stderr, "bench sweep failed: %s\n",
                 result.first_error().c_str());
    std::exit(2);
  }
  return seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out PATH] [--quick]\n", argv[0]);
      return 2;
    }
  }

  const std::uint64_t engine_events = quick ? 200000 : 1000000;
  const double world_sim_s = quick ? 0.5 : 2.0;
  const int world_nodes = 64;
  const double sweep_duration_s = quick ? 10.0 : 30.0;
  const int solver_iters = quick ? 300 : 2000;

  int failures = 0;
  hpas::Json doc = hpas::Json::object();
  doc.set("suite", "engine");
  doc.set("quick", quick);

  // Raw engine: throughput and the zero-allocation contract.
  const EngineResult engine = bench_engine_raw(engine_events);
  std::printf("engine: %.3g events/s, %llu allocs / %llu events\n",
              engine.events_per_sec,
              static_cast<unsigned long long>(engine.allocs),
              static_cast<unsigned long long>(engine.events));
  if (engine.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: warm schedule/fire loop allocated %llu times\n",
                 static_cast<unsigned long long>(engine.allocs));
    ++failures;
  }
  {
    hpas::Json section = hpas::Json::object();
    section.set("events_per_sec", engine.events_per_sec);
    section.set("events", engine.events);
    section.set("allocs_warm_loop", engine.allocs);
    doc.set("engine", std::move(section));
  }

  // World scenario: incremental vs reference full recompute.
  const WorldResult incremental =
      bench_world(world_nodes, /*full_recompute=*/false, world_sim_s);
  const WorldResult full =
      bench_world(world_nodes, /*full_recompute=*/true, world_sim_s);
  const double speedup = incremental.events_per_sec / full.events_per_sec;
  std::printf(
      "world(%d nodes): incremental %.3g events/s, full %.3g events/s "
      "(speedup %.2fx); incremental allocs %llu over %llu events\n",
      world_nodes, incremental.events_per_sec, full.events_per_sec, speedup,
      static_cast<unsigned long long>(incremental.allocs),
      static_cast<unsigned long long>(incremental.events));
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: incremental speedup %.2fx is below 3x\n",
                 speedup);
    ++failures;
  }
  // Amortized-zero contract: stray one-off capacity growths are allowed,
  // per-event allocation (allocs scaling with the event count) is not.
  if (incremental.allocs * 1000 >= incremental.events) {
    std::fprintf(stderr,
                 "FAIL: world event loop allocated %llu times over %llu "
                 "events (not amortized-zero)\n",
                 static_cast<unsigned long long>(incremental.allocs),
                 static_cast<unsigned long long>(incremental.events));
    ++failures;
  }
  {
    hpas::Json section = hpas::Json::object();
    section.set("nodes", world_nodes);
    section.set("incremental_events_per_sec", incremental.events_per_sec);
    section.set("full_recompute_events_per_sec", full.events_per_sec);
    section.set("speedup", speedup);
    section.set("incremental_allocs_warm_loop", incremental.allocs);
    section.set("events_each_mode", incremental.events);
    doc.set("world", std::move(section));
  }

  // Sharded 1k-node dragonfly: scaling across 1/2/4/8 engine shards.
  // The >=3x-at-8-shards and >=50M-aggregate-ops/s contracts are gated on
  // the hardware actually having the cores to show parallel speedup --
  // correctness (byte-identity at any shard count) is tested everywhere,
  // but wall-clock scaling is only a meaningful assertion on >=8 threads.
  {
    const double sharded_sim_s = quick ? 0.1 : 0.4;
    const unsigned hw = std::thread::hardware_concurrency();
    hpas::Json section = hpas::Json::object();
    section.set("hw_threads", static_cast<std::uint64_t>(hw));
    double agg1 = 0.0, agg8 = 0.0;
    for (const int shards : {1, 2, 4, 8}) {
      const ShardedResult r = bench_sharded(shards, sharded_sim_s);
      std::printf(
          "sharded(1k nodes, %d shards): %.3g events/s, %.3g agg ops/s\n",
          shards, r.events_per_sec, r.agg_ops_per_sec);
      hpas::Json row = hpas::Json::object();
      row.set("events_per_sec", r.events_per_sec);
      row.set("agg_ops_per_sec", r.agg_ops_per_sec);
      row.set("epochs", r.epochs);
      row.set("tasks", r.tasks);
      section.set("shards_" + std::to_string(shards), std::move(row));
      if (shards == 1) agg1 = r.agg_ops_per_sec;
      if (shards == 8) agg8 = r.agg_ops_per_sec;
    }
    const double scaling = agg1 > 0.0 ? agg8 / agg1 : 0.0;
    section.set("scaling_8x", scaling);
    const bool gate_scaling = hw >= 8;
    section.set("scaling_gated", gate_scaling);
    // Honest-gating marker for check_bench_regression.py and CI logs: a
    // nonzero count means this run never armed the in-binary scaling and
    // absolute-throughput contracts (too few hardware threads), so a
    // green result must not be read as "the parallel gates passed".
    section.set("gates_skipped",
                static_cast<std::uint64_t>(gate_scaling ? 0 : 2));
    std::printf("sharded: 8-shard scaling %.2fx on %u hw threads%s\n",
                scaling, hw, gate_scaling ? "" : " (scaling gate skipped)");
    if (gate_scaling && scaling < 3.0) {
      std::fprintf(stderr,
                   "FAIL: 8-shard aggregate scaling %.2fx is below 3x on "
                   "%u hw threads\n",
                   scaling, hw);
      ++failures;
    }
    if (gate_scaling && agg8 < 50.0e6) {
      std::fprintf(stderr,
                   "FAIL: 8-shard aggregate throughput %.3g ops/s is below "
                   "50M on %u hw threads\n",
                   agg8, hw);
      ++failures;
    }
    doc.set("sharded", std::move(section));
  }

  // Rate-solver latency scaling.
  {
    hpas::Json section = hpas::Json::array();
    for (const int nodes : {1, 2, 4, 8, 16, 32, 64}) {
      const double us = bench_rate_solver_us(nodes, solver_iters);
      std::printf("rate solver: %2d nodes, %.2f us/solve\n", nodes, us);
      hpas::Json row = hpas::Json::object();
      row.set("nodes", nodes);
      row.set("us_per_solve", us);
      section.push_back(std::move(row));
    }
    doc.set("rate_solver", std::move(section));
  }

  // Whole-sweep wall time, both modes.
  {
    const double inc_wall = bench_sweep_wall(sweep_duration_s, false);
    const double full_wall = bench_sweep_wall(sweep_duration_s, true);
    std::printf("sweep: incremental %.4fs, full %.4fs\n", inc_wall,
                full_wall);
    hpas::Json section = hpas::Json::object();
    section.set("scenario_duration_s", sweep_duration_s);
    section.set("incremental_wall_s", inc_wall);
    section.set("full_recompute_wall_s", full_wall);
    doc.set("sweep", std::move(section));
  }

  doc.set("peak_rss_bytes", hpas::peak_rss_bytes());
  std::printf("peak RSS: %.1f MiB\n",
              static_cast<double>(hpas::peak_rss_bytes()) / (1024.0 * 1024.0));

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << doc.dump(2);
  std::printf("wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}
