#!/usr/bin/env python3
"""Dispersion statistics over repeated BENCH_*.json runs.

Takes N runs of the same microbenchmark and reports, per metric, the
median, sample standard deviation, coefficient of variation (%CV =
100 * sigma / |median|), and the p95/p99 order statistics (linear
interpolation). With --cv-threshold it exits 1 when any reported
metric's %CV exceeds the threshold -- the "is this machine quiet enough
for the regression gate to mean anything" check the CI bench-smoke job
runs before comparing medians against the baseline.

Metrics are dotted paths into the JSON document ("factory.rows_per_sec").
Without --metric, every numeric scalar leaf shared by all runs is
reported (booleans and arrays are skipped); configuration echoes such as
"quick" or counters that are exact by construction have zero variance
and cost nothing to include.

Usage: bench_stats.py RUN1.json RUN2.json [...]
           [--metric a.b.c ...] [--cv-threshold PCT]
           [--format table|csv|json] [--out PATH]
"""

import json
import statistics
import sys
from pathlib import Path


def numeric_leaves(doc, prefix=()):
    """Yield (dotted path, value) for every numeric scalar leaf."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            yield from numeric_leaves(value, prefix + (key,))
    elif isinstance(doc, bool):
        return
    elif isinstance(doc, (int, float)):
        yield ".".join(prefix), float(doc)


def lookup(doc, dotted):
    node = doc
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def percentile(sorted_values, q):
    """Linear-interpolation percentile (numpy default) of sorted data."""
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    pos = (q / 100.0) * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def main(argv):
    run_paths = []
    metrics = []
    cv_threshold = None
    fmt = "table"
    out_path = None
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--metric" and i + 1 < len(argv):
            metrics.append(argv[i + 1])
            i += 2
        elif arg == "--cv-threshold" and i + 1 < len(argv):
            cv_threshold = float(argv[i + 1])
            i += 2
        elif arg == "--format" and i + 1 < len(argv):
            fmt = argv[i + 1]
            i += 2
        elif arg == "--out" and i + 1 < len(argv):
            out_path = Path(argv[i + 1])
            i += 2
        elif arg.startswith("--"):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        else:
            run_paths.append(Path(arg))
            i += 1
    if len(run_paths) < 2:
        print("need at least two runs", file=sys.stderr)
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if fmt not in ("table", "csv", "json"):
        print(f"unknown --format {fmt!r}", file=sys.stderr)
        return 2

    runs = [json.loads(p.read_text()) for p in run_paths]
    if not metrics:
        # Every numeric leaf present in ALL runs, in first-run order.
        first = [path for path, _ in numeric_leaves(runs[0])]
        shared = set(first)
        for run in runs[1:]:
            shared &= {path for path, _ in numeric_leaves(run)}
        metrics = [path for path in first if path in shared]
    if not metrics:
        print("no shared numeric metrics across the runs", file=sys.stderr)
        return 2

    rows = []
    missing = 0
    for metric in metrics:
        values = [lookup(run, metric) for run in runs]
        if any(v is None for v in values):
            print(f"warning: {metric} missing or non-numeric in a run; "
                  f"skipped", file=sys.stderr)
            missing += 1
            continue
        ordered = sorted(values)
        median = statistics.median(values)
        sigma = statistics.stdev(values)
        cv = 0.0 if median == 0.0 else 100.0 * sigma / abs(median)
        rows.append({
            "metric": metric,
            "n": len(values),
            "median": median,
            "sigma": sigma,
            "cv_pct": cv,
            "p95": percentile(ordered, 95.0),
            "p99": percentile(ordered, 99.0),
            "min": ordered[0],
            "max": ordered[-1],
        })

    if fmt == "json":
        text = json.dumps({"runs": len(runs), "metrics": rows}, indent=2)
        text += "\n"
    elif fmt == "csv":
        lines = ["metric,n,median,sigma,cv_pct,p95,p99,min,max"]
        for r in rows:
            lines.append(
                f"{r['metric']},{r['n']},{r['median']:.17g},"
                f"{r['sigma']:.17g},{r['cv_pct']:.17g},{r['p95']:.17g},"
                f"{r['p99']:.17g},{r['min']:.17g},{r['max']:.17g}")
        text = "\n".join(lines) + "\n"
    else:
        width = max(len(r["metric"]) for r in rows)
        lines = [f"{'metric':<{width}}  {'n':>3} {'median':>12} "
                 f"{'sigma':>11} {'%CV':>7} {'p95':>12} {'p99':>12}"]
        for r in rows:
            lines.append(
                f"{r['metric']:<{width}}  {r['n']:>3} {r['median']:>12.5g} "
                f"{r['sigma']:>11.4g} {r['cv_pct']:>7.2f} "
                f"{r['p95']:>12.5g} {r['p99']:>12.5g}")
        text = "\n".join(lines) + "\n"

    if out_path is not None:
        out_path.write_text(text)
        print(f"wrote {out_path}")
    else:
        sys.stdout.write(text)

    if cv_threshold is not None:
        noisy = [r for r in rows if r["cv_pct"] > cv_threshold]
        if noisy:
            for r in noisy:
                print(f"FAIL  {r['metric']}: CV {r['cv_pct']:.2f}% exceeds "
                      f"{cv_threshold:.2f}% over {r['n']} runs",
                      file=sys.stderr)
            return 1
        print(f"all {len(rows)} metric(s) within CV {cv_threshold:.2f}% "
              f"over {len(runs)} runs")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
