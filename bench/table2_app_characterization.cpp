// Table 2: characterization of the benchmark applications.
//
// The paper derives CPU-intensiveness from INST_RETIRED:ANY::spapiHASW
// (instructions/s), memory-intensiveness from L2_RQSTS:MISS::spapiHASW
// (cache misses/s), and network-intensiveness from the Aries NIC flit
// counter. We run every app clean (no anomalies) on the simulated
// Voltrino, measure the same three metrics, and threshold them into the
// check-mark table, verifying against the paper's ground truth.
#include <cstdio>
#include <string>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "sim/cluster.hpp"

namespace {

struct Characterization {
  double giga_ips = 0.0;       ///< instructions/s per node (1e9)
  double l2_miss_mps = 0.0;    ///< L2 misses/s per node (1e6)
  double net_mbps = 0.0;       ///< NIC TX bytes/s per node (1e6)
};

Characterization characterize(const std::string& app_name) {
  auto world = hpas::sim::make_voltrino_world();
  hpas::apps::BspApp app(*world, hpas::apps::app_by_name(app_name),
                         {.nodes = {0, 4}, .ranks_per_node = 4,
                          .first_core = 0});
  const double elapsed = app.run_to_completion();
  const auto& counters = world->node(0).counters();
  return {counters.instructions / elapsed / 1e9,
          counters.l2_misses / elapsed / 1e6,
          counters.nic_tx_bytes / elapsed / 1e6};
}

}  // namespace

int main() {
  // Thresholds between the observed clusters (units as in the struct).
  constexpr double kCpuThreshold = 4.3;    // G-instructions/s/node
  constexpr double kMemThreshold = 30.0;   // M-L2-misses/s/node
  constexpr double kNetThreshold = 10.0;   // MB/s/node

  std::printf(
      "== Table 2: application characterization from monitoring data ==\n"
      "(thresholded on INST_RETIRED, L2_RQSTS:MISS, NIC flits -- same\n"
      "metrics as the paper)\n\n");
  std::printf("%-12s %9s %12s %9s  %-5s %-5s %-5s %s\n", "app", "GIPS",
              "L2miss M/s", "net MB/s", "CPU", "Mem", "Net", "matches");

  bool all_match = true;
  for (const auto& app : hpas::apps::proxy_apps()) {
    const Characterization c = characterize(app.name);
    const bool cpu = c.giga_ips > kCpuThreshold;
    const bool mem = c.l2_miss_mps > kMemThreshold;
    const bool net = c.net_mbps > kNetThreshold;
    const bool match = cpu == app.cpu_intensive &&
                       mem == app.memory_intensive &&
                       net == app.network_intensive;
    all_match = all_match && match;
    std::printf("%-12s %9.2f %12.1f %9.2f  %-5s %-5s %-5s %s\n",
                app.name.c_str(), c.giga_ips, c.l2_miss_mps, c.net_mbps,
                cpu ? "x" : "", mem ? "x" : "", net ? "x" : "",
                match ? "yes" : "NO");
  }
  std::printf("\nresult: %s\n",
              all_match ? "all characterizations match Table 2"
                        : "MISMATCH vs Table 2");
  return all_match ? 0 : 1;
}
