// Figure 5: node memory usage over time under memleak vs. memeater.
//
// Paper shape: memeater steps up to its plateau early and stays flat;
// memleak grows monotonically for its whole lifetime; both release their
// memory when the anomaly terminates.
//
// Both scenarios run under a structured TraceCapture; each is run twice
// and the trace streams must agree bit for bit (the replay guarantee,
// checked here on a real figure workload, not just unit fixtures). Set
// HPAS_TRACE_OUT=<prefix> to dump <prefix>.memleak.bin /
// <prefix>.memeater.bin for chrome://tracing conversion or trace_diff.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "metrics/store.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"
#include "trace/export.hpp"
#include "trace/replay.hpp"
#include "trace/tracer.hpp"

namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

std::vector<double> memory_used_timeline(const char* anomaly,
                                         double horizon_s,
                                         hpas::trace::TraceFile* trace_out) {
  auto world = hpas::sim::make_voltrino_world();
  hpas::trace::TraceCapture capture;
  world->attach_tracer(&capture.tracer());
  world->enable_monitoring(1.0);
  if (std::string(anomaly) == "memleak") {
    // 20 MB leaked per second (paper default chunk), running for 400 s.
    hpas::simanom::inject_memleak(*world, 0, 0, 20.0 * 1024 * 1024, 1.0,
                                  400.0);
  } else {
    // 35 MB growth steps (paper default) to a 2.5 GiB plateau.
    hpas::simanom::inject_memeater(*world, 0, 0, 35.0 * 1024 * 1024,
                                   2.5 * kGiB, 1.0, 400.0);
  }
  world->run_until(horizon_s);
  if (trace_out != nullptr) *trace_out = capture.take();

  const auto& series = world->node_store(0).series({"Memfree", "meminfo"});
  const double total =
      world->node(0).config().memory_bytes / 1024.0;  // kB, like meminfo
  std::vector<double> used_gb;
  for (std::size_t i = 0; i < series.size(); ++i) {
    used_gb.push_back((total - series.value_at(i)) * 1024.0 / kGiB);
  }
  return used_gb;
}

/// Re-runs `anomaly` and diffs the fresh trace against `recorded`;
/// returns true when they agree bit for bit.
bool replay_checks(const char* anomaly, double horizon_s,
                   const hpas::trace::TraceFile& recorded) {
  hpas::trace::TraceFile fresh;
  memory_used_timeline(anomaly, horizon_s, &fresh);
  const auto divergence = hpas::trace::diff_traces(recorded, fresh);
  if (divergence.diverged)
    std::fprintf(stderr, "fig05: %s replay diverged: %s\n", anomaly,
                 divergence.description.c_str());
  return !divergence.diverged;
}

}  // namespace

int main() {
  std::printf(
      "== Figure 5: memory usage over time (memleak vs. memeater) ==\n"
      "paper shape: memeater plateaus early; memleak grows monotonically;\n"
      "both release at termination (400s)\n\n");
  constexpr double kHorizon = 500.0;
  hpas::trace::TraceFile leak_trace;
  hpas::trace::TraceFile eater_trace;
  const auto leak = memory_used_timeline("memleak", kHorizon, &leak_trace);
  const auto eater = memory_used_timeline("memeater", kHorizon, &eater_trace);

  std::printf("%8s %16s %16s\n", "time(s)", "memleak used(GB)",
              "memeater used(GB)");
  for (std::size_t t = 0; t < leak.size() && t < eater.size(); t += 25) {
    std::printf("%8zu %16.2f %16.2f\n", t, leak[t], eater[t]);
  }

  // Shape: memleak grows monotonically through its lifetime; memeater is
  // flat on its plateau; both return to the OS baseline after t=400.
  bool shape_ok = true;
  for (std::size_t t = 25; t < 390; t += 25)
    shape_ok = shape_ok && leak[t] > leak[t - 25];
  shape_ok = shape_ok && std::abs(eater[350] - eater[150]) < 0.01;
  shape_ok = shape_ok && eater[150] > eater[0] + 1.0;  // plateau is real
  shape_ok = shape_ok && std::abs(leak[450] - leak[0]) < 0.01 &&
             std::abs(eater[450] - eater[0]) < 0.01;

  // The replay guarantee on a figure workload: a second run of each
  // scenario reproduces its trace bit for bit.
  const bool replay_ok = replay_checks("memleak", kHorizon, leak_trace) &&
                         replay_checks("memeater", kHorizon, eater_trace);
  std::printf("\ntrace: memleak %zu records, memeater %zu records, "
              "replay %s\n",
              leak_trace.records.size(), eater_trace.records.size(),
              replay_ok ? "bit-identical" : "DIVERGED");

  if (const char* prefix = std::getenv("HPAS_TRACE_OUT")) {
    const std::string leak_path = std::string(prefix) + ".memleak.bin";
    const std::string eater_path = std::string(prefix) + ".memeater.bin";
    hpas::trace::write_binary_file(leak_path, leak_trace);
    hpas::trace::write_binary_file(eater_path, eater_trace);
    std::printf("trace: wrote %s and %s\n", leak_path.c_str(),
                eater_path.c_str());
  }

  std::printf(
      "BENCH_JSON {\"bench\":\"fig05_memory_timeline\","
      "\"memleak_trace_records\":%zu,\"memeater_trace_records\":%zu,"
      "\"replay_identical\":%s}\n",
      leak_trace.records.size(), eater_trace.records.size(),
      replay_ok ? "true" : "false");
  std::printf("shape check: %s\n", shape_ok && replay_ok ? "OK" : "FAILED");
  return shape_ok && replay_ok ? 0 : 1;
}
