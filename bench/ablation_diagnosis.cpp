// Ablation: what makes anomaly diagnosis hard?
//
// The paper's Fig. 10 confusion among cpuoccupy/membw/cachecopy is
// attributed to "the lack of metrics representing memory bandwidth in the
// monitoring data". Two knobs probe that claim on our substrate:
//
//   1. sensor noise -- our simulated counters are noise-free versions of
//      LDMS data; production data is much dirtier. Sweeping the noise
//      shows where classification starts to degrade;
//   2. the bandwidth counter -- adding DRAM_BYTES (the metric the paper's
//      deployment lacked) should recover membw separability even under
//      heavy noise, confirming the paper's hypothesis.
#include <cstdio>

#include "ml/diagnosis.hpp"

namespace {

void run_row(double noise, bool bandwidth_metrics) {
  hpas::ml::DiagnosisDataOptions options;
  options.variants_per_app = 3;  // 144 samples: keep the sweep quick
  options.measurement_noise = noise;
  options.include_bandwidth_metrics = bandwidth_metrics;
  const auto data = hpas::ml::generate_diagnosis_dataset(options);
  const auto results = hpas::ml::evaluate_classifiers(data, 3);
  const auto& rf = results.back();  // RandomForest
  std::printf("%7.2f %10s %9.2f  ", noise, bandwidth_metrics ? "yes" : "no",
              rf.overall_f1);
  for (const double f1 : rf.per_class_f1) std::printf(" %6.2f", f1);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "== Ablation: sensor noise x bandwidth metrics (RandomForest) ==\n\n");
  std::printf("%7s %10s %9s   %6s %6s %6s %6s %6s %6s\n", "noise", "DRAM ctr",
              "overall", "none", "mleak", "meater", "cpuocc", "membw",
              "cachec");
  for (const double noise : {0.05, 0.25, 0.50, 0.80}) {
    run_row(noise, false);
  }
  std::printf("\n-- with the memory-bandwidth counter added --\n");
  for (const double noise : {0.50, 0.80}) {
    run_row(noise, true);
  }
  std::printf(
      "\ntakeaway: classification is robust until the sensor noise swamps\n"
      "the level differences; the busy triple (cpuoccupy/membw/cachecopy)\n"
      "degrades first -- the paper's confusion block -- and the DRAM\n"
      "counter buys back membw accuracy, as the paper hypothesized.\n");
  return 0;
}
