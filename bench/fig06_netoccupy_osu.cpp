// Figure 6: OSU point-to-point bandwidth vs. message size under netoccupy.
//
// Paper setup on Voltrino (4 nodes/switch): the OSU pair spans two
// switches; 1, 2, or 3 netoccupy node pairs (2/4/6 nodes) blast 100 MB
// messages across the same inter-switch path. Paper shape: bandwidth
// grows with message size (latency-bound -> bandwidth-bound) and drops
// with anomaly pairs, but the reduction is *limited* because redundant
// links + adaptive routing give the trunk more capacity than one NIC.
#include <cstdio>
#include <vector>

#include "apps/osu_bw.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

int main() {
  std::printf(
      "== Figure 6: OSU bandwidth vs. message size under netoccupy ==\n"
      "paper shape: rises with message size; monotone (limited) drop with\n"
      "2/4/6 anomaly nodes\n\n");

  std::vector<double> sizes_kb = {16,  32,   64,   128,  256,
                                  512, 1024, 2048, 4096, 8192};
  std::printf("%-12s", "msgKB");
  for (const double kb : sizes_kb) std::printf(" %8.0f", kb);
  std::printf("\n");

  std::vector<std::vector<double>> curves;
  for (const int anomaly_nodes : {0, 2, 4, 6}) {
    // OSU pair: node 0 (switch 0) <-> node 4 (switch 1).
    // Anomaly pairs: (1,5), (2,6), (3,7) -- same inter-switch trunk.
    auto world = hpas::sim::make_voltrino_world();
    for (int pair = 0; pair < anomaly_nodes / 2; ++pair) {
      hpas::simanom::inject_netoccupy(*world, 1 + pair, 5 + pair,
                                      /*ntasks=*/1,
                                      100.0 * 1024 * 1024, /*duration=*/1e6);
    }
    std::vector<double> sizes_bytes;
    for (const double kb : sizes_kb) sizes_bytes.push_back(kb * 1024.0);
    hpas::apps::OsuBandwidth osu(*world, {.src_node = 0,
                                          .dst_node = 4,
                                          .message_sizes = sizes_bytes,
                                          .window = 16,
                                          .msg_latency_s = 15e-6});
    osu.run_to_completion();

    std::printf("n=%-2d GB/s  ", anomaly_nodes);
    for (const double bw : osu.results()) std::printf(" %8.2f", bw / 1e9);
    std::printf("\n");
    curves.push_back(osu.results());
  }

  // Shape: every curve rises with message size; more anomaly nodes means
  // less bandwidth at every size; and the reduction is *limited* (the
  // redundant trunk keeps >= 40% of the clean bandwidth even at n=6).
  bool shape_ok = true;
  for (const auto& curve : curves) {
    for (std::size_t i = 1; i < curve.size(); ++i)
      shape_ok = shape_ok && curve[i] > curve[i - 1];
  }
  for (std::size_t c = 1; c < curves.size(); ++c) {
    for (std::size_t i = 0; i < curves[c].size(); ++i)
      shape_ok = shape_ok && curves[c][i] < curves[c - 1][i] + 1e-6;
  }
  shape_ok = shape_ok && curves.back().back() > 0.4 * curves.front().back();
  std::printf("shape check: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
