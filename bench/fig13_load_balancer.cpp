// Figure 13: 3D stencil time-per-iteration vs. cpuoccupy intensity for
// two Charm++ load balancers.
//
// Paper setup: one 32-core node; cpuoccupy intensity sweeps 0..3200% of
// one CPU (i.e., 0..32 fully-occupied cores). Paper shape: the balancers
// tie at intensity 0 and at high intensities (> ~1600%, when more than
// half the cores are occupied there is nowhere left to move work), while
// in between GreedyRefineLB -- which measures available CPU capacity --
// beats the object-count-only balancer.
#include <cstdio>

#include "lb/balancers.hpp"
#include "lb/stencil.hpp"

int main() {
  std::printf(
      "== Figure 13: stencil load balancing under cpuoccupy ==\n"
      "paper shape: equal at 0%% and >1600%%; GreedyRefineLB wins between\n\n");

  const hpas::lb::StencilExperiment experiment;
  const hpas::lb::LbObjOnly obj_only;
  const hpas::lb::GreedyRefineLb greedy;

  std::printf("%14s %18s %18s\n", "intensity(%)", "LBObjOnly (s/iter)",
              "GreedyRefineLB (s/iter)");
  double tie_ratio_at_zero = 0.0, win_ratio_mid = 1.0, end_ratio = 0.0;
  for (int intensity = 0; intensity <= 3200; intensity += 200) {
    const double t_obj = experiment.time_per_iteration(obj_only, intensity);
    const double t_greedy = experiment.time_per_iteration(greedy, intensity);
    std::printf("%14d %18.4f %18.4f\n", intensity, t_obj, t_greedy);
    if (intensity == 0) tie_ratio_at_zero = t_greedy / t_obj;
    if (intensity == 800) win_ratio_mid = t_greedy / t_obj;
    if (intensity == 3200) end_ratio = t_greedy / t_obj;
  }

  // Shape: tie at zero, clear greedy win in the middle, convergence at
  // the top of the sweep.
  const bool shape_ok = tie_ratio_at_zero > 0.85 && tie_ratio_at_zero < 1.1 &&
                        win_ratio_mid < 0.75 && end_ratio > 0.85;
  std::printf("shape check: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
