// Figure 3: cachecopy working-set level vs. L3 misses per kilo-instruction
// (MPKI) of a colocated single-rank miniGhost.
//
// Paper setup: miniGhost and cachecopy share one physical core via
// hyperthreading (so they share L1, L2 AND L3); the anomaly's working set
// sweeps L1 -> L2 -> L3. Paper shape: MPKI grows with the working set,
// and Chameleon Cloud (smaller L3) suffers more L3 misses than Voltrino.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

using hpas::simanom::SimCacheLevel;

/// Steady-state L3 MPKI of a single-rank miniGhost colocated with
/// cachecopy at the given level (level 0 = no anomaly).
double l3_mpki_with_anomaly(hpas::sim::World& world, int level) {
  hpas::apps::AppSpec spec = hpas::apps::app_by_name("miniGhost");
  spec.iterations = 1000000;  // long-running; we probe mid-flight
  hpas::apps::BspApp app(world, spec, {.nodes = {0}, .ranks_per_node = 1,
                                       .first_core = 0});
  if (level > 0) {
    hpas::simanom::inject_cachecopy(world, /*node=*/0, /*core=*/0,
                                    static_cast<SimCacheLevel>(level),
                                    /*multiplier=*/1.0, /*duration=*/1e6);
  }
  // Let the system reach steady state, then probe the app rank while it
  // is in a compute phase.
  hpas::sim::Task* rank = app.rank_tasks()[0];
  world.run_until(world.now() + 5.0);
  for (int guard = 0; guard < 100000; ++guard) {
    if (rank->phase().kind == hpas::sim::PhaseKind::kCompute) break;
    world.simulator().step();
  }
  world.update();
  const auto& rates = rank->rates();
  return rates.instr_rate > 0.0 ? rates.l3_miss_rate / rates.instr_rate * 1000.0
                                : 0.0;
}

std::vector<double> sweep(
    const std::string& system,
    const std::function<std::unique_ptr<hpas::sim::World>()>& make) {
  static const char* kLevels[] = {"none", "L1", "L2", "L3"};
  std::vector<double> mpki_by_level;
  std::printf("%-16s", system.c_str());
  for (int level = 0; level <= 3; ++level) {
    auto world = make();  // fresh world per point
    const double mpki = l3_mpki_with_anomaly(*world, level);
    mpki_by_level.push_back(mpki);
    std::printf(" %s=%-7.2f", kLevels[level], mpki);
  }
  std::printf("\n");
  return mpki_by_level;
}

}  // namespace

int main() {
  std::printf(
      "== Figure 3: cachecopy working set vs. miniGhost L3 MPKI ==\n"
      "paper shape: MPKI increases none < L1 < L2 < L3; Chameleon (smaller\n"
      "L3) sees more misses than Voltrino\n\n");
  const auto voltrino =
      sweep("Voltrino", [] { return hpas::sim::make_voltrino_world(); });
  const auto chameleon =
      sweep("Chameleon", [] { return hpas::sim::make_chameleon_world(); });

  bool shape_ok = true;
  for (std::size_t i = 1; i < voltrino.size(); ++i) {
    shape_ok = shape_ok && voltrino[i] > voltrino[i - 1];
    shape_ok = shape_ok && chameleon[i] > chameleon[i - 1];
  }
  shape_ok = shape_ok && chameleon.back() > voltrino.back();
  std::printf("shape check: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
