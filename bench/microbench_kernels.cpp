// google-benchmark microbenchmarks of HPAS's hot kernels: the native
// generators' inner loops and the simulator/ML primitives the figure
// benches lean on. These quantify the *generator-side* costs (how fast
// can cachecopy evict, how fast does membw stream) on the build host.
#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>
#include <vector>

#include <memory>

#include "anomalies/cache_topology.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "lb/balancers.hpp"
#include "ml/decision_tree.hpp"
#include "sim/engine/simulator.hpp"
#include "sim/maxmin.hpp"
#include "sim/network.hpp"

namespace {

void BM_RngFillBytes(benchmark::State& state) {
  hpas::Rng rng(42);
  std::vector<unsigned char> buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    rng.fill_bytes(buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RngFillBytes)->Arg(4096)->Arg(1 << 20);

/// The cachecopy inner loop at each cache level's working set.
void BM_CacheCopyKernel(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<unsigned char> block(2 * bytes, 0x5a);
  unsigned char* a = block.data();
  unsigned char* b = block.data() + bytes;
  for (auto _ : state) {
    std::memcpy(b, a, bytes);
    benchmark::DoNotOptimize(b);
    std::swap(a, b);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CacheCopyKernel)
    ->Arg(16 * 1024)      // half L1
    ->Arg(128 * 1024)     // half L2
    ->Arg(8 * 1024 * 1024);  // a slice of L3

void BM_MaxMinAllocate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> demands(n);
  hpas::Rng rng(7);
  for (auto& d : demands) d = rng.uniform(0.1, 10.0);
  for (auto _ : state) {
    auto alloc = hpas::sim::max_min_allocate(5.0 * static_cast<double>(n) / 4,
                                             demands);
    benchmark::DoNotOptimize(alloc.data());
  }
}
BENCHMARK(BM_MaxMinAllocate)->Arg(8)->Arg(64)->Arg(512);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    hpas::sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule_in(static_cast<double>(i % 97) * 1e-3,
                      [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SimulatorEventChurn)->Arg(1000)->Arg(10000);

void BM_DecisionTreeFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hpas::Rng rng(11);
  hpas::ml::Dataset data;
  data.class_names = {"a", "b", "c"};
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(24);
    for (auto& v : x) v = rng.uniform01();
    const int y = x[0] > 0.66 ? 2 : (x[1] > 0.5 ? 1 : 0);
    data.add(std::move(x), y);
  }
  for (auto _ : state) {
    hpas::ml::DecisionTree tree;
    tree.fit(data);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_DecisionTreeFit)->Arg(200)->Arg(1000);

void BM_NetworkFlowRates(benchmark::State& state) {
  using namespace hpas::sim;
  Network net(Topology::two_tier(4, 8, 10e9, 18e9));
  const auto flows_n = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<Flow> flows;
  hpas::Rng rng(5);
  for (std::size_t i = 0; i < flows_n; ++i) {
    const int src = static_cast<int>(rng.next_below(32));
    const int dst = static_cast<int>(rng.next_below(32));
    auto task = std::make_unique<Task>(
        "f", src, 0, TaskProfile{},
        [](Task&) { return Phase::done(); });
    task->set_phase(Phase::message(dst, 1e9));
    flows.push_back({task.get(), src, dst, 0.0});
    tasks.push_back(std::move(task));
  }
  for (auto _ : state) {
    net.compute_rates(flows);
    benchmark::DoNotOptimize(flows.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_NetworkFlowRates)->Arg(4)->Arg(32)->Arg(128);

void BM_RefineAssignment(benchmark::State& state) {
  using namespace hpas::lb;
  const auto n = static_cast<std::size_t>(state.range(0));
  hpas::Rng rng(9);
  ObjectLoads objects(n);
  for (auto& load : objects) load = rng.uniform(0.5, 1.5);
  CoreCapacities caps(32, 1.0);
  caps[0] = 0.4;
  caps[7] = 0.6;
  std::vector<int> initial(n);
  for (auto& core : initial) core = static_cast<int>(rng.next_below(32));
  for (auto _ : state) {
    auto result = refine_assignment(initial, objects, caps);
    benchmark::DoNotOptimize(result.migrations);
  }
}
BENCHMARK(BM_RefineAssignment)->Arg(128)->Arg(1024);

void BM_SummaryStats(benchmark::State& state) {
  hpas::Rng rng(3);
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  for (auto& v : xs) v = rng.normal();
  for (auto _ : state) {
    const auto s = hpas::summarize(xs);
    benchmark::DoNotOptimize(s.mean);
  }
}
BENCHMARK(BM_SummaryStats)->Arg(60)->Arg(600);

}  // namespace

BENCHMARK_MAIN();
