// Ablation: the WBAS load-blend weighting (paper Sec. 5.2).
//
// WBAS computes Load = 5/6 x current + 1/6 x 5-minute average. The paper
// notes HPAS "enables a very systematic evaluation of the equation": with
// injected anomalies the two components can be decoupled. This bench
// builds the adversarial case for each extreme:
//
//   * a FLASH anomaly that started seconds before the job arrives
//     (high current load, clean history) -- history-heavy weightings miss
//     it and allocate onto the hogged node;
//   * a PAUSED anomaly that hammered the node for minutes and just went
//     idle, and resumes right after allocation -- current-only weightings
//     forgive it too quickly.
//
// The sweep shows why a current-leaning blend (the paper's 5/6) is a good
// default: it handles the flash case at full strength and still carries
// enough history for the paused case.
#include <cstdio>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "sched/monitor.hpp"
#include "sched/policies.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

enum class Scenario { kFlash, kPaused };

double job_time(const hpas::sched::AllocationPolicy& policy,
                Scenario scenario) {
  auto world = hpas::sim::make_voltrino_world();
  hpas::sched::NodeMonitor monitor(*world, 10.0);
  monitor.start();

  if (scenario == Scenario::kFlash) {
    // Background: nodes 0-4 carry persistent moderate hogs, so the
    // policy must rank among contaminated nodes. Node 5's full-strength
    // hog appears only 15 s before the job: history-heavy weightings
    // rate node 5 *better* than the persistently-loaded nodes and land
    // the job on it.
    for (int node = 0; node <= 4; ++node) {
      hpas::simanom::inject_cpuoccupy(*world, node, 0, 40.0, 1e6);
    }
    world->run_until(600.0);
    hpas::simanom::inject_cpuoccupy(*world, 5, 0, 100.0, 1e6);
    world->run_until(615.0);
  } else {
    // Ten minutes of hammering, a quiet minute, then it resumes as the
    // job starts.
    hpas::simanom::inject_cpuoccupy(*world, 0, 0, 100.0, 540.0);
    world->run_until(600.0);
    world->simulator().schedule_in(15.0, [&world] {
      hpas::simanom::inject_cpuoccupy(*world, 0, 0, 100.0, 1e6);
    });
  }

  const auto nodes = policy.select_nodes(monitor.status(), 4);
  hpas::apps::AppSpec spec = hpas::apps::app_by_name("sw4lite");
  spec.iterations = 60;
  hpas::apps::BspApp app(*world, spec,
                         {.nodes = nodes, .ranks_per_node = 4,
                          .first_core = 0});
  return app.run_to_completion();
}

}  // namespace

int main() {
  std::printf(
      "== Ablation: WBAS current-vs-average load weighting ==\n"
      "(SW4lite on 4 of 8 nodes; flash = fresh hog hiding behind a clean\n"
      "history, paused = old hog hiding behind an idle minute)\n\n");
  std::printf("%-12s %16s %16s\n", "weight w", "flash hog (s)",
              "paused hog (s)");
  for (const double w : {0.0, 0.25, 0.5, 5.0 / 6.0, 1.0}) {
    const hpas::sched::WeightedCpPolicy policy(w);
    std::printf("%-12.2f %16.1f %16.1f%s\n", w,
                job_time(policy, Scenario::kFlash),
                job_time(policy, Scenario::kPaused),
                w == 5.0 / 6.0 ? "   <- WBAS default" : "");
  }
  return 0;
}
