// Figure 2: cpuoccupy intensity vs. measured node CPU utilization.
//
// Paper result: "cpuoccupy can accurately use the given percentage of the
// CPU" -- the measured utilization (user::procstat + sys::procstat)
// tracks the requested intensity across 10..100%.
//
// We reproduce it on the simulated Voltrino node via the procstat sampler
// (exactly the metric the paper reads), and -- since cpuoccupy is a pure
// userspace generator -- optionally against the real host when
// HPAS_FIG2_NATIVE=1 (off by default: CI machines are noisy).
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "anomalies/cpuoccupy.hpp"
#include "metrics/host_samplers.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

/// Measured utilization (in % of ONE core) for a given intensity on the
/// simulated node, via the user+sys procstat deltas over the anomaly
/// window.
double simulated_utilization_pct(double intensity_pct) {
  auto world = hpas::sim::make_voltrino_world();
  world->enable_monitoring(1.0);
  hpas::simanom::inject_cpuoccupy(*world, /*node=*/0, /*core=*/0,
                                  intensity_pct, /*duration=*/60.0);
  world->run_until(60.0);

  const auto& store = world->node_store(0);
  const auto user =
      store.series({"user", "procstat"}).values_between(0.0, 61.0);
  const auto sys = store.series({"sys", "procstat"}).values_between(0.0, 61.0);
  // Counters are cumulative jiffies (USER_HZ=100); busy seconds of one
  // core over the window:
  const double busy_jiffies =
      (user.back() - user.front()) + (sys.back() - sys.front());
  const double window_s = 60.0;
  return busy_jiffies / 100.0 / window_s * 100.0;
}

double native_utilization_pct(double intensity_pct) {
  using namespace hpas::anomalies;
  hpas::metrics::ProcStatSampler procstat;
  const auto before = procstat.sample();
  CpuOccupyOptions opts;
  opts.common.duration_s = 1.0;
  opts.utilization_pct = intensity_pct;
  CpuOccupy anomaly(opts);
  anomaly.run();
  const auto after = procstat.sample();
  // Host utilization is reported over all cores; scale to one core.
  const double frac = hpas::metrics::cpu_utilization_between(before, after);
  const long cores = sysconf(_SC_NPROCESSORS_ONLN);
  return frac * static_cast<double>(cores > 0 ? cores : 1) * 100.0;
}

}  // namespace

int main() {
  std::printf("== Figure 2: cpuoccupy intensity vs. CPU utilization ==\n");
  std::printf("paper shape: measured utilization == requested intensity\n\n");
  std::printf("%-14s %22s\n", "intensity(%)", "sim utilization(%)");
  bool shape_ok = true;
  for (int intensity = 10; intensity <= 100; intensity += 10) {
    const double measured = simulated_utilization_pct(intensity);
    std::printf("%-14d %22.1f\n", intensity, measured);
    shape_ok = shape_ok && std::abs(measured - intensity) < 2.0;
  }
  std::printf("shape check: %s\n", shape_ok ? "OK" : "FAILED");
  if (!shape_ok) return 1;

  if (const char* env = std::getenv("HPAS_FIG2_NATIVE");
      env != nullptr && env[0] == '1') {
    std::printf("\n-- native host check (1s per point) --\n");
    std::printf("%-14s %22s\n", "intensity(%)", "host utilization(%)");
    for (int intensity = 20; intensity <= 100; intensity += 40) {
      std::printf("%-14d %22.1f\n", intensity,
                  native_utilization_pct(intensity));
    }
  }
  return 0;
}
