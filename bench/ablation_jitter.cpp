// Ablation: OS jitter amplification at scale.
//
// Paper Sec. 3.1: cpuoccupy "can emulate OS jitter by setting the
// consumed CPU time to a low value, which impacts the scheduling behavior
// of the OS". The textbook property of OS jitter (Hoefler et al., cited
// by the paper) is that a fixed, tiny per-node noise level amplifies with
// job size: a barrier waits for the unluckiest rank each iteration, and
// the more ranks there are, the likelier *someone* is hit.
//
// We inject random-phase jitter daemons (inject_os_jitter: full-demand
// bursts with exponential gaps, ~1% average CPU) on every core of a
// BSP job and sweep the rank count. The steady cpuoccupy duty cycle at
// the same 1% average is the control: it slows every rank equally and
// does NOT amplify.
#include <cstdio>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "sim/world.hpp"
#include "simanom/injectors.hpp"

namespace {

double job_time(int ranks, bool jitter, bool steady) {
  // One fat node so placement never limits the sweep.
  hpas::sim::NodeConfig config;
  config.cores = 64;
  hpas::sim::World world(config, hpas::sim::Topology::star(1, 10e9),
                         hpas::sim::FsConfig{});
  for (int core = 0; core < ranks; ++core) {
    if (jitter) {
      // ~1% average: 2 ms bursts, 200 ms mean gap, per-core phase.
      hpas::simanom::inject_os_jitter(world, 0, core, 0.002, 0.2, 1e6,
                                      0x9e3779b9u + static_cast<unsigned>(core));
    } else if (steady) {
      hpas::simanom::inject_cpuoccupy(world, 0, core, 1.0, 1e6);
    }
  }
  hpas::apps::AppSpec spec = hpas::apps::app_by_name("CoMD");
  spec.iterations = 300;
  spec.comm_bytes_per_iteration = 0;      // pure compute + barrier
  spec.instr_per_iteration = 2.3e8;       // ~100 ms iterations
  hpas::apps::BspApp app(world, spec,
                         {.nodes = {0}, .ranks_per_node = ranks,
                          .first_core = 0});
  return app.run_to_completion();
}

}  // namespace

int main() {
  std::printf(
      "== Ablation: OS jitter amplification with job size ==\n"
      "(300 barrier-synchronized iterations; ~1%% average noise per core)\n\n");
  std::printf("%6s %10s %14s %14s %12s %12s\n", "ranks", "clean(s)",
              "jitter(s)", "steady 1%%(s)", "jitter ovh", "steady ovh");
  for (const int ranks : {1, 2, 4, 8, 16, 32}) {
    const double clean = job_time(ranks, false, false);
    const double jitter = job_time(ranks, true, false);
    const double steady = job_time(ranks, false, true);
    std::printf("%6d %10.1f %14.1f %14.1f %11.1f%% %11.1f%%\n", ranks, clean,
                jitter, steady, (jitter / clean - 1.0) * 100.0,
                (steady / clean - 1.0) * 100.0);
  }
  std::printf(
      "\ntakeaway: random-phase jitter overhead grows with rank count\n"
      "(the barrier collects the worst-case burst each iteration) while\n"
      "the same average load applied steadily stays flat.\n");
  return 0;
}
