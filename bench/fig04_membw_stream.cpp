// Figure 4: membw / cachecopy effect on STREAM memory bandwidth.
//
// Paper setup: STREAM runs on core 0; membw instances occupy 1, 3, 7,
// then 15 of the other cores; a 15-instance cachecopy run is the control.
// Paper shape: membw collapses STREAM's best rate roughly in proportion
// to the instance count, while cachecopy x15 has no significant impact.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/stream.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

double stream_best_rate_gbs(const std::string& anomaly, int instances) {
  auto world = hpas::sim::make_voltrino_world();
  for (int i = 0; i < instances; ++i) {
    const int core = 1 + i;  // STREAM holds core 0
    if (anomaly == "membw") {
      hpas::simanom::inject_membw(*world, 0, core, /*duration=*/1e6);
    } else if (anomaly == "cachecopy") {
      hpas::simanom::inject_cachecopy(*world, 0, core,
                                      hpas::simanom::SimCacheLevel::kL3,
                                      1.0, /*duration=*/1e6);
    }
  }
  hpas::apps::StreamBench stream(*world, {.node = 0, .core = 0,
                                          .bytes_per_pass = 2.0e9,
                                          .passes = 10});
  return stream.run_to_completion() / 1e9;
}

}  // namespace

int main() {
  std::printf(
      "== Figure 4: membw & cachecopy vs. STREAM best rate (GB/s) ==\n"
      "paper shape: membw 1x > 3x > 7x > 15x (large drop); cachecopy 15x\n"
      "~= none\n\n");
  std::printf("%-16s %14s\n", "anomaly", "BestRate GB/s");
  const double none = stream_best_rate_gbs("none", 0);
  std::printf("%-16s %14.2f\n", "none", none);
  std::vector<double> membw_rates;
  for (const int n : {1, 3, 7, 15}) {
    const std::string label = "membw " + std::to_string(n) + "x";
    membw_rates.push_back(stream_best_rate_gbs("membw", n));
    std::printf("%-16s %14.2f\n", label.c_str(), membw_rates.back());
  }
  const double cachecopy = stream_best_rate_gbs("cachecopy", 15);
  std::printf("%-16s %14.2f\n", "cachecopy 15x", cachecopy);

  bool shape_ok = membw_rates[0] < none;
  for (std::size_t i = 1; i < membw_rates.size(); ++i)
    shape_ok = shape_ok && membw_rates[i] < membw_rates[i - 1];
  shape_ok = shape_ok && membw_rates.back() < 0.25 * none;  // "large drop"
  shape_ok = shape_ok && cachecopy > 0.95 * none;           // "no impact"
  std::printf("shape check: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
