// Figure 8: execution time of each application under each anomaly.
//
// Placement (mirrors the paper's node-sharing experiment): each app runs
// 4 ranks x 2 nodes, spanning the two switch groups (nodes 0 and 4);
// the anomaly runs on node 0:
//   - cpuoccupy / cachecopy share rank 0's core (the orphan-process /
//     hyperthread scenario);
//   - membw / memeater / memleak run on a free core of node 0;
//   - netoccupy streams between two *other* nodes (1 -> 5) across the
//     same inter-switch trunk the app's halo exchange uses.
//
// Paper shape: cachecopy, cpuoccupy and membw dominate; CPU-intensive
// apps (CoMD, miniMD, SW4lite) are hit hardest by cpuoccupy/cachecopy;
// memory-intensive apps (Cloverleaf, MILC, miniAMR, miniGhost) by membw;
// memleak/memeater/netoccupy barely register (no swap; fat network).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

double run_app_with_anomaly(const std::string& app_name,
                            const std::string& anomaly) {
  auto world = hpas::sim::make_voltrino_world();

  if (anomaly == "cpuoccupy") {
    hpas::simanom::inject_cpuoccupy(*world, 0, 0, 100.0, 1e6);
  } else if (anomaly == "cachecopy") {
    hpas::simanom::inject_cachecopy(*world, 0, 0,
                                    hpas::simanom::SimCacheLevel::kL3, 1.0,
                                    1e6);
  } else if (anomaly == "membw") {
    hpas::simanom::inject_membw(*world, 0, 8, 1e6);
  } else if (anomaly == "memeater") {
    hpas::simanom::inject_memeater(*world, 0, 8, 35.0 * 1024 * 1024,
                                   8.0e9, 1.0, 1e6);
  } else if (anomaly == "memleak") {
    hpas::simanom::inject_memleak(*world, 0, 8, 20.0 * 1024 * 1024, 1.0, 1e6);
  } else if (anomaly == "netoccupy") {
    hpas::simanom::inject_netoccupy(*world, 1, 5, 2, 100.0 * 1024 * 1024,
                                    1e6);
  }

  hpas::apps::BspApp app(*world, hpas::apps::app_by_name(app_name),
                         {.nodes = {0, 4}, .ranks_per_node = 4,
                          .first_core = 0});
  return app.run_to_completion();
}

}  // namespace

int main() {
  std::printf(
      "== Figure 8: application execution time (s) with each anomaly ==\n"
      "paper shape: cachecopy/cpuoccupy hit CPU-bound apps; membw hits\n"
      "memory-bound apps; memleak/memeater/netoccupy ~= none\n\n");

  const std::vector<std::string> anomalies = {
      "cachecopy", "cpuoccupy", "membw", "memeater",
      "memleak",   "netoccupy", "none"};

  std::printf("%-12s", "app");
  for (const auto& anomaly : anomalies)
    std::printf(" %10s", anomaly.c_str());
  std::printf("\n");

  bool shape_ok = true;
  for (const auto& app : hpas::apps::proxy_apps()) {
    std::printf("%-12s", app.name.c_str());
    std::map<std::string, double> time;
    for (const auto& anomaly : anomalies) {
      time[anomaly] = run_app_with_anomaly(app.name, anomaly);
      std::printf(" %10.1f", time[anomaly]);
    }
    std::printf("\n");

    // Per-app shape: cachecopy worst, then cpuoccupy; memleak/memeater/
    // netoccupy indistinguishable from none; membw only hurts the
    // memory-intensive apps.
    shape_ok = shape_ok && time["cachecopy"] > time["cpuoccupy"] &&
               time["cpuoccupy"] > 1.5 * time["none"];
    for (const char* benign : {"memeater", "memleak", "netoccupy"})
      shape_ok = shape_ok && time[benign] < 1.05 * time["none"];
    if (app.memory_intensive) {
      shape_ok = shape_ok && time["membw"] > 1.15 * time["none"];
    } else {
      shape_ok = shape_ok && time["membw"] < 1.10 * time["none"];
    }
  }
  std::printf("shape check: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
