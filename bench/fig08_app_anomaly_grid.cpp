// Figure 8: execution time of each application under each anomaly.
//
// Ported onto the deterministic parallel experiment runner: the 8 apps x
// 7 anomalies grid is expressed declaratively and fanned across the
// work-stealing pool, once at 1 thread and once at all hardware threads.
// The two sweeps must produce byte-identical summaries (the runner's
// reproducibility contract); the wall-clock ratio is the batching speedup
// the bench records as a BENCH_JSON line.
//
// Placement (mirrors the paper's node-sharing experiment): each app runs
// 4 ranks x 2 nodes spanning the two switch groups; cpuoccupy/cachecopy
// share rank 0's core, membw/memeater/memleak take a free core, and
// netoccupy streams between two *other* nodes (1 -> 5) across the same
// inter-switch trunk the app's halo exchange uses (runner::inject_anomaly
// encodes exactly this policy).
//
// Paper shape: cachecopy, cpuoccupy and membw dominate; CPU-intensive
// apps (CoMD, miniMD, SW4lite) are hit hardest by cpuoccupy/cachecopy;
// memory-intensive apps (Cloverleaf, MILC, miniAMR, miniGhost) by membw;
// memleak/memeater/netoccupy barely register (no swap; fat network).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "apps/profiles.hpp"
#include "common/stopwatch.hpp"
#include "runner/grid.hpp"
#include "runner/runner.hpp"
#include "runner/thread_pool.hpp"

namespace {

hpas::runner::SweepGrid fig08_grid() {
  hpas::Json spec = hpas::Json::object();
  spec.set("name", "fig08_app_anomaly_grid");
  spec.set("system", "voltrino");
  spec.set("duration_s", 1.0e6);  // anomaly outlives every app run
  spec.set("sample_period_s", 1.0);
  spec.set("run_to_completion", true);
  hpas::Json anomalies = hpas::Json::array();
  for (const char* a : {"cachecopy", "cpuoccupy", "membw", "memeater",
                        "memleak", "netoccupy", "none"})
    anomalies.push_back(a);
  spec.set("anomalies", std::move(anomalies));
  // "apps" axis omitted: defaults to all eight proxy apps.
  return hpas::runner::expand_grid(spec);
}

}  // namespace

int main() {
  std::printf(
      "== Figure 8: application execution time (s) with each anomaly ==\n"
      "paper shape: cachecopy/cpuoccupy hit CPU-bound apps; membw hits\n"
      "memory-bound apps; memleak/memeater/netoccupy ~= none\n\n");

  const auto grid = fig08_grid();
  // At least 4 workers even on small machines: an oversubscribed pool
  // shuffles completion order the hardest, which is exactly what the
  // byte-identity check needs to be meaningful.
  const int hw_threads =
      std::max(4, hpas::runner::WorkStealingPool::default_thread_count());

  hpas::Stopwatch serial_watch;
  const auto serial = hpas::runner::run_sweep(grid, {.threads = 1});
  const double serial_s = serial_watch.elapsed_seconds();

  hpas::Stopwatch parallel_watch;
  const auto parallel = hpas::runner::run_sweep(grid, {.threads = hw_threads});
  const double parallel_s = parallel_watch.elapsed_seconds();

  // Third sweep with per-scenario trace capture at the same thread count:
  // parallel_s vs traced_s is the tracing on/off overhead the BENCH_JSON
  // line records (disabled tracing must stay free; enabled capture of the
  // full event stream is expected to cost, and this quantifies it).
  hpas::Stopwatch traced_watch;
  const auto traced = hpas::runner::run_sweep(
      grid, {.threads = hw_threads, .capture_traces = true});
  const double traced_s = traced_watch.elapsed_seconds();

  if (!serial.ok() || !parallel.ok() || !traced.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 (!serial.ok()   ? serial
                  : !parallel.ok() ? parallel
                                   : traced)
                     .first_error()
                     .c_str());
    return 1;
  }
  const bool identical =
      serial.summary_json().dump(2) == parallel.summary_json().dump(2);
  std::uint64_t trace_records = 0;
  bool traces_captured = true;
  for (const auto& s : traced.scenarios) {
    trace_records += s.trace_records;
    traces_captured = traces_captured && !s.trace_bin.empty();
  }

  // App-time table, row per app, column per anomaly (grid order is
  // app-major so results regroup directly).
  std::map<std::string, std::map<std::string, double>> time;
  for (const auto& s : parallel.scenarios)
    time[s.spec.app][s.spec.anomaly] = s.app_elapsed_s;

  const std::vector<std::string> anomalies = {
      "cachecopy", "cpuoccupy", "membw", "memeater",
      "memleak",   "netoccupy", "none"};
  std::printf("%-12s", "app");
  for (const auto& anomaly : anomalies)
    std::printf(" %10s", anomaly.c_str());
  std::printf("\n");

  bool shape_ok = true;
  for (const auto& app : hpas::apps::proxy_apps()) {
    const auto& row = time[app.name];
    std::printf("%-12s", app.name.c_str());
    for (const auto& anomaly : anomalies)
      std::printf(" %10.1f", row.at(anomaly));
    std::printf("\n");

    // Per-app shape: cachecopy worst, then cpuoccupy; memleak/memeater/
    // netoccupy indistinguishable from none; membw only hurts the
    // memory-intensive apps.
    shape_ok = shape_ok && row.at("cachecopy") > row.at("cpuoccupy") &&
               row.at("cpuoccupy") > 1.5 * row.at("none");
    for (const char* benign : {"memeater", "memleak", "netoccupy"})
      shape_ok = shape_ok && row.at(benign) < 1.05 * row.at("none");
    if (app.memory_intensive) {
      shape_ok = shape_ok && row.at("membw") > 1.15 * row.at("none");
    } else {
      shape_ok = shape_ok && row.at("membw") < 1.10 * row.at("none");
    }
  }

  std::printf("\nrunner: %zu scenarios  serial %.2fs  %d-thread %.2fs  "
              "speedup %.2fx  outputs %s\n",
              grid.scenarios.size(), serial_s, hw_threads, parallel_s,
              serial_s / parallel_s,
              identical ? "byte-identical" : "DIVERGED");
  std::printf("tracing: off %.2fs  on %.2fs (%.2fx, %llu records)\n",
              parallel_s, traced_s, traced_s / parallel_s,
              static_cast<unsigned long long>(trace_records));
  std::printf(
      "BENCH_JSON {\"bench\":\"fig08_app_anomaly_grid\",\"scenarios\":%zu,"
      "\"serial_s\":%.3f,\"parallel_s\":%.3f,\"threads\":%d,"
      "\"speedup\":%.2f,\"byte_identical\":%s,"
      "\"trace_off_s\":%.3f,\"trace_on_s\":%.3f,\"trace_overhead\":%.2f,"
      "\"trace_records\":%llu}\n",
      grid.scenarios.size(), serial_s, parallel_s, hw_threads,
      serial_s / parallel_s, identical ? "true" : "false", parallel_s,
      traced_s, traced_s / parallel_s,
      static_cast<unsigned long long>(trace_records));
  std::printf("shape check: %s\n",
              shape_ok && identical && traces_captured ? "OK" : "FAILED");
  return shape_ok && identical && traces_captured ? 0 : 1;
}
