// Table 1: the HPAS anomaly catalog, plus a smoke run of every native
// generator (sub-second durations, tiny footprints) proving each one
// executes and produces work on this host.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "anomalies/suite.hpp"
#include "common/units.hpp"

namespace {

std::string temp_dir() {
  const char* tmp = std::getenv("TMPDIR");
  return tmp != nullptr ? tmp : "/tmp";
}

std::vector<std::string> smoke_args(const std::string& name) {
  const std::string dir = temp_dir();
  if (name == "cpuoccupy") return {"-u", "50", "-d", "0.3s"};
  if (name == "cachecopy") return {"-c", "L1", "-d", "0.2s"};
  if (name == "membw") return {"-s", "4M", "-d", "0.2s"};
  if (name == "memeater") return {"-s", "1M", "-r", "0.02s", "-d", "0.2s"};
  if (name == "memleak") return {"-s", "1M", "-r", "0.02s", "-d", "0.2s"};
  if (name == "netoccupy")
    return {"-m", "loopback", "-s", "1M", "-p", "17219", "-d", "0.3s"};
  if (name == "iometadata") return {"--dir", dir, "-f", "5", "-d", "0.2s"};
  if (name == "iobandwidth")
    return {"--dir", dir, "-s", "4M", "-d", "0.3s"};
  return {"-d", "0.2s"};
}

}  // namespace

int main() {
  std::printf("== Table 1: HPAS anomalies and their details ==\n\n");
  std::printf("%-12s %-16s %-36s %s\n", "name", "subsystem", "behavior",
              "runtime configuration options");
  for (const auto& info : hpas::anomalies::anomaly_catalog()) {
    std::printf("%-12s %-16s %-36s %s\n", info.name.c_str(),
                info.subsystem.c_str(), info.behavior.c_str(),
                info.knobs.c_str());
  }

  std::printf("\n-- smoke run of every native generator --\n");
  std::printf("%-12s %14s %16s %12s\n", "name", "iterations", "work",
              "active");
  bool all_ok = true;
  for (const auto& info : hpas::anomalies::anomaly_catalog()) {
    const auto parser = hpas::anomalies::make_anomaly_parser(info.name);
    const auto args = parser.parse(smoke_args(info.name));
    const auto anomaly = hpas::anomalies::make_anomaly(info.name, args);
    const auto stats = anomaly->run();
    const bool ok = stats.iterations > 0 && stats.work_amount > 0;
    all_ok = all_ok && ok;
    std::printf("%-12s %14llu %16.3g %11.0fms %s\n", info.name.c_str(),
                static_cast<unsigned long long>(stats.iterations),
                stats.work_amount, stats.active_seconds * 1e3,
                ok ? "" : "  <-- FAILED");
  }
  std::printf("\nresult: %s\n", all_ok ? "all 8 generators operational"
                                       : "SOME GENERATORS FAILED");
  return all_ok ? 0 : 1;
}
