// Figures 9 & 10: anomaly diagnosis with tree-based classifiers.
//
// Generates labeled monitoring data by running the eight proxy apps with
// and without injected anomalies on the simulated Voltrino, extracts
// statistical features per metric window, and evaluates DecisionTree,
// AdaBoost and RandomForest with stratified 3-fold cross-validation.
//
// Paper shape (Fig. 9): all three classifiers score high on none /
// memleak / memeater; cpuoccupy, membw and cachecopy are the weakest
// classes; RandomForest's overall F1 ~ 0.94.
// Paper shape (Fig. 10): RF confusion matrix is near-diagonal except a
// confusion block among cpuoccupy <-> membw <-> cachecopy (the
// monitoring data carries no memory-bandwidth channel).
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "ml/diagnosis.hpp"
#include "ml/random_forest.hpp"

int main() {
  std::printf("== Figures 9 & 10: anomaly diagnosis (3-fold CV) ==\n");
  std::printf("generating dataset (simulated runs)...\n");

  hpas::ml::DiagnosisDataOptions options;
  const auto data = hpas::ml::generate_diagnosis_dataset(options);
  std::printf("dataset: %zu samples x %zu features, %d classes\n\n",
              data.size(), data.num_features(), data.num_classes());

  const auto results = hpas::ml::evaluate_classifiers(data, /*k_folds=*/3);

  // ---- Figure 9: per-class F1 scores. -------------------------------
  std::printf("-- Figure 9: per-class F1 --\n%-14s", "classifier");
  for (const auto& name : data.class_names)
    std::printf(" %10s", name.c_str());
  std::printf(" %10s\n", "overall");
  for (const auto& scores : results) {
    std::printf("%-14s", scores.classifier.c_str());
    for (const double f1 : scores.per_class_f1) std::printf(" %10.2f", f1);
    std::printf(" %10.2f\n", scores.overall_f1);
  }

  // ---- Figure 10: RandomForest confusion matrix. ---------------------
  const auto& rf = results.back();
  std::printf("\n-- Figure 10: confusion matrix (%s, row-normalized) --\n",
              rf.classifier.c_str());
  std::printf("%-11s", "true\\pred");
  for (const auto& name : data.class_names)
    std::printf(" %10s", name.c_str());
  std::printf("\n");
  for (std::size_t t = 0; t < rf.confusion.size(); ++t) {
    std::printf("%-11s", data.class_names[t].c_str());
    for (const double v : rf.confusion[t]) std::printf(" %10.2f", v);
    std::printf("\n");
  }

  // ---- Diagnostics the paper's framework reports: which monitoring
  // metrics drive the model (gini importances of a full-data forest).
  hpas::ml::RandomForest forest;
  forest.fit(data);
  const auto importances = forest.feature_importances();
  std::vector<std::size_t> order(importances.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importances[a] > importances[b];
  });
  std::printf("\n-- top diagnostic features (RF gini importance) --\n");
  for (std::size_t k = 0; k < 8 && k < order.size(); ++k) {
    std::printf("  %5.1f%%  %s\n", importances[order[k]] * 100.0,
                data.feature_names[order[k]].c_str());
  }

  // Shape: high overall accuracy with the footprint classes near-perfect
  // and the busy triple (cpuoccupy/membw/cachecopy) as the weakest part
  // of the matrix -- the paper's Fig. 9/10 structure.
  bool shape_ok = rf.overall_f1 > 0.85;
  shape_ok = shape_ok && rf.per_class_f1[1] > 0.95   // memleak
             && rf.per_class_f1[2] > 0.95;           // memeater
  const double triple_min = std::min(
      {rf.per_class_f1[3], rf.per_class_f1[4], rf.per_class_f1[5]});
  for (int c = 0; c < 3; ++c)
    shape_ok = shape_ok && triple_min <= rf.per_class_f1[static_cast<std::size_t>(c)];
  std::printf("\nshape check: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
