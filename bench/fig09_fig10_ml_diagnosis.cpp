// Figures 9 & 10: anomaly diagnosis with tree-based classifiers.
//
// Generates labeled monitoring data by running the eight proxy apps with
// and without injected anomalies on the simulated Voltrino, extracts
// statistical features per metric window, and evaluates DecisionTree,
// AdaBoost and RandomForest with stratified 3-fold cross-validation.
//
// Paper shape (Fig. 9): all three classifiers score high on none /
// memleak / memeater; cpuoccupy, membw and cachecopy are the weakest
// classes; RandomForest's overall F1 ~ 0.94.
// Paper shape (Fig. 10): RF confusion matrix is near-diagonal except a
// confusion block among cpuoccupy <-> membw <-> cachecopy (the
// monitoring data carries no memory-bandwidth channel).
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/stopwatch.hpp"
#include "ml/diagnosis.hpp"
#include "ml/random_forest.hpp"
#include "runner/diagnosis_sweep.hpp"
#include "runner/thread_pool.hpp"

int main() {
  std::printf("== Figures 9 & 10: anomaly diagnosis (3-fold CV) ==\n");
  std::printf("generating dataset (simulated runs, parallel sweep)...\n");

  // The training sweep (classes x apps x variants = 240 simulated runs)
  // goes through the experiment runner's thread pool; 1-thread and
  // N-thread generation must agree feature-for-feature (the runner's
  // determinism contract) and their wall-clock ratio is the recorded
  // batching speedup.
  hpas::ml::DiagnosisDataOptions options;
  // At least 4 workers even on small machines so the parallel run really
  // reorders task completion (the determinism check is vacuous at 1).
  const int hw_threads =
      std::max(4, hpas::runner::WorkStealingPool::default_thread_count());

  hpas::Stopwatch serial_watch;
  const auto serial_data =
      hpas::runner::generate_diagnosis_dataset_parallel(options, 1);
  const double serial_s = serial_watch.elapsed_seconds();

  hpas::Stopwatch parallel_watch;
  const auto data =
      hpas::runner::generate_diagnosis_dataset_parallel(options, hw_threads);
  const double parallel_s = parallel_watch.elapsed_seconds();

  const bool identical = serial_data.values() == data.values() &&
                         serial_data.labels == data.labels;
  std::printf("dataset: %zu samples x %zu features, %d classes\n",
              data.size(), data.num_features(), data.num_classes());
  std::printf("sweep: serial %.2fs  %d-thread %.2fs  speedup %.2fx  %s\n",
              serial_s, hw_threads, parallel_s, serial_s / parallel_s,
              identical ? "bit-identical" : "DIVERGED");
  std::printf(
      "BENCH_JSON {\"bench\":\"fig09_fig10_ml_diagnosis\",\"runs\":%zu,"
      "\"serial_s\":%.3f,\"parallel_s\":%.3f,\"threads\":%d,"
      "\"speedup\":%.2f,\"byte_identical\":%s}\n\n",
      data.size(), serial_s, parallel_s, hw_threads, serial_s / parallel_s,
      identical ? "true" : "false");
  if (!identical) return 1;

  const auto results = hpas::ml::evaluate_classifiers(data, /*k_folds=*/3);

  // ---- Figure 9: per-class F1 scores. -------------------------------
  std::printf("-- Figure 9: per-class F1 --\n%-14s", "classifier");
  for (const auto& name : data.class_names)
    std::printf(" %10s", name.c_str());
  std::printf(" %10s\n", "overall");
  for (const auto& scores : results) {
    std::printf("%-14s", scores.classifier.c_str());
    for (const double f1 : scores.per_class_f1) std::printf(" %10.2f", f1);
    std::printf(" %10.2f\n", scores.overall_f1);
  }

  // ---- Figure 10: RandomForest confusion matrix. ---------------------
  const auto& rf = results.back();
  std::printf("\n-- Figure 10: confusion matrix (%s, row-normalized) --\n",
              rf.classifier.c_str());
  std::printf("%-11s", "true\\pred");
  for (const auto& name : data.class_names)
    std::printf(" %10s", name.c_str());
  std::printf("\n");
  for (std::size_t t = 0; t < rf.confusion.size(); ++t) {
    std::printf("%-11s", data.class_names[t].c_str());
    for (const double v : rf.confusion[t]) std::printf(" %10.2f", v);
    std::printf("\n");
  }

  // ---- Diagnostics the paper's framework reports: which monitoring
  // metrics drive the model (gini importances of a full-data forest).
  hpas::ml::RandomForest forest;
  forest.fit(data);
  const auto importances = forest.feature_importances();
  std::vector<std::size_t> order(importances.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importances[a] > importances[b];
  });
  std::printf("\n-- top diagnostic features (RF gini importance) --\n");
  for (std::size_t k = 0; k < 8 && k < order.size(); ++k) {
    std::printf("  %5.1f%%  %s\n", importances[order[k]] * 100.0,
                data.feature_names[order[k]].c_str());
  }

  // Shape: high overall accuracy with the footprint classes near-perfect
  // and the busy triple (cpuoccupy/membw/cachecopy) as the weakest part
  // of the matrix -- the paper's Fig. 9/10 structure.
  bool shape_ok = rf.overall_f1 > 0.85;
  shape_ok = shape_ok && rf.per_class_f1[1] > 0.95   // memleak
             && rf.per_class_f1[2] > 0.95;           // memeater
  const double triple_min = std::min(
      {rf.per_class_f1[3], rf.per_class_f1[4], rf.per_class_f1[5]});
  for (int c = 0; c < 3; ++c)
    shape_ok = shape_ok && triple_min <= rf.per_class_f1[static_cast<std::size_t>(c)];
  std::printf("\nshape check: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
