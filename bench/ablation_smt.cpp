// Ablation: SMT sharing vs. the Fig. 12 policy gap.
//
// EXPERIMENTS.md notes our WBAS-vs-RoundRobin margin (47%) overshoots
// the paper's 26% because the colocated cpuoccupy is modeled as a hard
// 50/50 core split, while on the real machine it ran on a hyperthread
// sibling that steals less than half of the victim. This ablation sweeps
// the node model's SMT aggregate throughput: at ~1.3 core-equivalents
// per oversubscribed core (Haswell-typical), the victim keeps ~65% of
// its speed and the policy gap lands in the paper's range.
#include <cstdio>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "sched/monitor.hpp"
#include "sched/policies.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

double run_policy(const hpas::sched::AllocationPolicy& policy,
                  double smt_throughput) {
  hpas::sim::VoltrinoPreset preset;
  preset.node.smt_aggregate_throughput = smt_throughput;
  auto world = hpas::sim::make_voltrino_world(preset);

  hpas::simanom::inject_cpuoccupy(*world, 0, 0, 100.0, 1e6);
  const double leak_cap = world->node(2).config().memory_bytes -
                          world->node(2).config().os_base_memory - 1.0e9;
  hpas::simanom::inject_memleak(*world, 2, 8, 2.0e9, 5.0, 1e6, leak_cap);

  hpas::sched::NodeMonitor monitor(*world, 10.0);
  monitor.start();
  world->run_until(60.0);
  const auto nodes = policy.select_nodes(monitor.status(), 4);

  hpas::apps::BspApp app(*world, hpas::apps::app_by_name("sw4lite"),
                         {.nodes = nodes, .ranks_per_node = 4,
                          .first_core = 0});
  return app.run_to_completion();
}

}  // namespace

int main() {
  std::printf(
      "== Ablation: SMT sharing model vs. the Fig. 12 policy gap ==\n"
      "paper: WBAS is 26%% faster than RoundRobin\n\n");
  const hpas::sched::RoundRobinPolicy rr;
  const hpas::sched::WbasPolicy wbas;
  std::printf("%16s %12s %12s %12s\n", "SMT throughput", "WBAS (s)",
              "RR (s)", "WBAS gain");
  for (const double smt : {1.0, 1.15, 1.3, 1.5}) {
    const double t_wbas = run_policy(wbas, smt);
    const double t_rr = run_policy(rr, smt);
    std::printf("%16.2f %12.1f %12.1f %11.0f%%%s\n", smt, t_wbas, t_rr,
                (1.0 - t_wbas / t_rr) * 100.0,
                smt == 1.3 ? "   <- Haswell-like" : "");
  }
  std::printf(
      "\ntakeaway: with realistic SMT aggregate throughput the colocated\n"
      "hog steals less than half its victim and the policy gap approaches\n"
      "the paper's 26%%.\n");
  return 0;
}
