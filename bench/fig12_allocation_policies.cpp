// Figures 11 & 12: allocation policies under anomalies.
//
// Paper setup: 8 available nodes; cpuoccupy (100% of one core) on node 0,
// memleak (holding ~1 GB... the paper pins free memory low) on node 2.
// SW4lite requests 4 nodes. RoundRobin picks nodes [0..3] by label order;
// WBAS ranks nodes by CP = (1-Load%) x MemFree and avoids the two
// anomalous nodes, picking [1, 3, 4, 5] (Fig. 11). Run 3 times per
// policy; paper result: WBAS ~322 s vs RR ~436 s (~26% faster).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "sched/monitor.hpp"
#include "sched/policies.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

struct RunResult {
  std::vector<int> nodes;
  double elapsed = 0.0;
};

RunResult run_policy(const hpas::sched::AllocationPolicy& policy, int seed) {
  auto world = hpas::sim::make_voltrino_world();

  // Anomalies: CPU hog on node 0, memory leak squatting on node 2. The
  // leak grows to leave ~1 GB free (the paper's setting) and then holds.
  hpas::simanom::inject_cpuoccupy(*world, 0, 0, 100.0, 1e6);
  const double leak_cap =
      world->node(2).config().memory_bytes -
      world->node(2).config().os_base_memory - 1.0e9;
  hpas::simanom::inject_memleak(*world, 2, 8, 2.0e9, 5.0, 1e6, leak_cap);

  hpas::sched::NodeMonitor monitor(*world, /*period_s=*/10.0);
  monitor.start();
  // Let the monitor observe the anomalous state before the job arrives
  // (vary the arrival a little per repetition).
  world->run_until(60.0 + 7.0 * seed);

  const auto status = monitor.status();
  const auto nodes = policy.select_nodes(status, 4);

  hpas::apps::AppSpec spec = hpas::apps::app_by_name("sw4lite");
  // Per-run input variation (the paper's three repetitions differ too).
  spec.instr_per_iteration *= 1.0 + 0.015 * seed;
  hpas::apps::BspApp app(*world, spec,
                         {.nodes = nodes, .ranks_per_node = 4,
                          .first_core = 0});
  const double elapsed = app.run_to_completion();
  return {nodes, elapsed};
}

std::string node_list(const std::vector<int>& nodes) {
  std::string out = "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(nodes[i]);
  }
  return out + "]";
}

}  // namespace

int main() {
  std::printf(
      "== Figures 11 & 12: job allocation policies under anomalies ==\n"
      "anomalies: cpuoccupy on node 0, memleak on node 2; SW4lite on 4 of\n"
      "8 nodes, 3 runs per policy.\n"
      "paper shape: RR picks [0..3] and suffers; WBAS avoids nodes 0 and 2\n"
      "and is ~26%% faster (322s vs 436s)\n\n");

  const hpas::sched::RoundRobinPolicy rr;
  const hpas::sched::WbasPolicy wbas;

  double mean_time[2] = {0.0, 0.0};
  std::vector<int> first_nodes[2];
  const hpas::sched::AllocationPolicy* policies[2] = {&wbas, &rr};
  for (int p = 0; p < 2; ++p) {
    for (int run = 0; run < 3; ++run) {
      const RunResult result = run_policy(*policies[p], run);
      mean_time[p] += result.elapsed / 3.0;
      if (run == 0) first_nodes[p] = result.nodes;
      std::printf("%-10s run %d: nodes %-12s time %7.1f s%s\n",
                  policies[p]->name().c_str(), run + 1,
                  node_list(result.nodes).c_str(), result.elapsed,
                  run == 0 ? "   (Fig. 11 allocation)" : "");
    }
  }
  std::printf("\n%-10s mean: %7.1f s\n%-10s mean: %7.1f s\n", "WBAS",
              mean_time[0], "RoundRobin", mean_time[1]);
  std::printf("WBAS speedup over RR: %.0f%%\n",
              (1.0 - mean_time[0] / mean_time[1]) * 100.0);

  // Shape: the exact Fig. 11 allocation maps, and a decisive WBAS win.
  const bool shape_ok = first_nodes[0] == std::vector<int>{1, 3, 4, 5} &&
                        first_nodes[1] == std::vector<int>{0, 1, 2, 3} &&
                        mean_time[0] < 0.85 * mean_time[1];
  std::printf("shape check: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
