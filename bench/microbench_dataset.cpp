// Microbenchmark + contract gate for the streaming dataset factory.
//
// Emits BENCH_dataset.json (suite "dataset") and exits non-zero when a
// hard contract fails. Three sections:
//
//   extractor    raw StreamingFeatureExtractor on_sample() throughput on
//                a synthetic sample stream, plus its retained-buffer peak
//                (the O(metrics x window) bound).
//   equality     spot bit-equality: a handful of diagnosis runs executed
//                twice -- batch (MetricStore + extract_window_features
//                via run_diagnosis_scenario) and streamed (SampleSink,
//                store_samples = false) -- must produce byte-identical
//                feature vectors.
//   factory      the scale demo: >= 100k labeled rows (10k with --quick)
//                generated end-to-end through run_dataset_factory into
//                sharded, checksummed output. Reports rows/s, bytes/row,
//                samples streamed, and proves the flat-memory claim by
//                comparing peak RSS (VmHWM) after a small run against
//                peak RSS after a 10x larger run: the delta must stay
//                bounded regardless of row count.
//
// Usage: microbench_dataset [--out PATH] [--quick]
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/json.hpp"
#include "common/peak_rss.hpp"
#include "common/rng.hpp"
#include "dataset/factory.hpp"
#include "dataset/streaming.hpp"
#include "ml/diagnosis.hpp"
#include "runner/grid.hpp"
#include "sim/world.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

hpas::dataset::StreamingExtractorConfig extractor_config(
    const hpas::ml::DiagnosisDataOptions& options) {
  hpas::dataset::StreamingExtractorConfig config;
  config.metrics = hpas::ml::diagnosis_feature_metrics(
      options.include_bandwidth_metrics);
  config.gauge.reserve(config.metrics.size());
  for (const auto& id : config.metrics) {
    config.gauge.push_back(hpas::ml::diagnosis_metric_is_gauge(id) ? 1 : 0);
  }
  config.window_t0 = options.warmup_s;
  config.window_t1 = options.run_duration_s + 0.5;
  config.noise = options.measurement_noise;
  return config;
}

struct ExtractorResult {
  double samples_per_sec = 0.0;
  std::uint64_t samples = 0;
  std::size_t peak_buffered = 0;
  std::size_t window_values = 0;  ///< in-window samples per metric
};

// Synthetic stream: `rounds` scenarios of `duration_s` seconds at 1 Hz
// across the feature metrics, reusing one extractor via reset() -- the
// factory's steady-state shape.
ExtractorResult bench_extractor(const hpas::ml::DiagnosisDataOptions& options,
                                int rounds, double duration_s) {
  hpas::dataset::StreamingFeatureExtractor extractor(
      extractor_config(options));
  const auto metrics =
      hpas::ml::diagnosis_feature_metrics(options.include_bandwidth_metrics);
  hpas::Rng rng(0xB43C);
  ExtractorResult r;
  const auto t0 = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (double t = 0.0; t < duration_s; t += 1.0) {
      for (const auto& id : metrics) {
        extractor.on_sample(id, t, rng.uniform(100.0, 110.0));
        ++r.samples;
      }
    }
    hpas::Rng noise(0x4E6F);
    (void)extractor.finalize(&noise);
    r.peak_buffered =
        std::max(r.peak_buffered, extractor.peak_buffered_values());
    extractor.reset();
  }
  const double wall = seconds_since(t0);
  r.samples_per_sec = static_cast<double>(r.samples) / wall;
  r.window_values = static_cast<std::size_t>(
      options.run_duration_s + 0.5 - options.warmup_s + 1.0);
  return r;
}

struct EqualityResult {
  int runs = 0;
  int mismatches = 0;
};

// Executes the first `runs` planned diagnosis runs both ways and compares
// the feature vectors bit for bit.
EqualityResult bench_equality(const hpas::ml::DiagnosisDataOptions& options,
                              int runs) {
  EqualityResult r;
  const auto plans = hpas::ml::plan_diagnosis_runs(options);
  for (const auto& plan : plans) {
    if (r.runs >= runs) break;
    ++r.runs;
    const std::vector<double> batch =
        hpas::ml::run_diagnosis_scenario(plan, options);

    hpas::dataset::StreamingFeatureExtractor extractor(
        extractor_config(options));
    auto scenario = hpas::ml::begin_diagnosis_scenario(
        plan, options, &extractor, /*store_samples=*/false);
    scenario.world->run_until(options.run_duration_s);
    hpas::Rng noise_rng = plan.noise_rng;
    const std::vector<double> streamed = extractor.finalize(&noise_rng);

    bool equal = batch.size() == streamed.size();
    for (std::size_t i = 0; equal && i < batch.size(); ++i) {
      equal = std::memcmp(&batch[i], &streamed[i], sizeof(double)) == 0;
    }
    if (!equal) ++r.mismatches;
  }
  return r;
}

hpas::runner::SweepGrid demo_grid() {
  hpas::Json doc = hpas::Json::object();
  doc.set("name", "bench_dataset");
  doc.set("system", "voltrino");
  doc.set("seed", std::uint64_t{42});
  hpas::Json apps = hpas::Json::array();
  apps.push_back("CoMD");
  apps.push_back("milc");
  doc.set("apps", std::move(apps));
  hpas::Json anomalies = hpas::Json::array();
  anomalies.push_back("none");
  anomalies.push_back("cpuoccupy");
  anomalies.push_back("cachecopy");
  anomalies.push_back("membw");
  doc.set("anomalies", std::move(anomalies));
  hpas::Json intensities = hpas::Json::array();
  intensities.push_back(0.75);
  doc.set("intensities", std::move(intensities));
  doc.set("repeats", 1);
  doc.set("duration_s", 12.0);
  doc.set("sample_period_s", 1.0);
  doc.set("run_to_completion", false);
  return hpas::runner::expand_grid(doc);
}

struct FactoryResult {
  std::uint64_t rows = 0;
  double wall_s = 0.0;
  double rows_per_sec = 0.0;
  double bytes_per_row = 0.0;
  std::uint64_t shard_bytes = 0;
  std::uint64_t samples_seen = 0;
  std::size_t peak_buffered_values = 0;
  std::uint64_t peak_rss_after = 0;
  bool complete = false;
};

FactoryResult bench_factory(const hpas::runner::SweepGrid& grid,
                            std::uint64_t rows, int threads,
                            const std::filesystem::path& out_dir) {
  const hpas::dataset::DatasetPlan plan = hpas::dataset::plan_from_grid(
      grid, rows, /*warmup_s=*/2.0, /*noise=*/0.5,
      /*include_bandwidth=*/false);
  hpas::dataset::DatasetFactoryOptions options;
  options.out_dir = out_dir.string();
  options.shards = 8;
  options.threads = threads;
  options.checkpoint_rows = 4096;

  FactoryResult r;
  const auto t0 = Clock::now();
  const hpas::dataset::DatasetFactoryResult result =
      hpas::dataset::run_dataset_factory(plan, options);
  r.wall_s = seconds_since(t0);
  r.rows = result.rows_executed + result.rows_resumed;
  r.rows_per_sec = static_cast<double>(r.rows) / r.wall_s;
  r.samples_seen = result.samples_seen;
  r.peak_buffered_values = result.peak_buffered_values;
  r.complete = result.complete;
  for (std::uint32_t s = 0; s < options.shards; ++s) {
    const auto p = out_dir / hpas::dataset::shard_file_name(s);
    std::error_code ec;
    const auto size = std::filesystem::file_size(p, ec);
    if (!ec) r.shard_bytes += size;
  }
  r.bytes_per_row = r.rows == 0 ? 0.0
                                : static_cast<double>(r.shard_bytes) /
                                      static_cast<double>(r.rows);
  r.peak_rss_after = hpas::peak_rss_bytes();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_dataset.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out PATH] [--quick]\n", argv[0]);
      return 2;
    }
  }

  int failures = 0;
  hpas::Json doc = hpas::Json::object();
  doc.set("suite", "dataset");
  doc.set("quick", quick);

  // Short diagnosis options shared by the extractor and equality legs.
  hpas::ml::DiagnosisDataOptions diag;
  diag.variants_per_app = 1;
  diag.run_duration_s = 15.0;
  diag.warmup_s = 2.0;

  // Raw extractor throughput and the bounded-buffer contract.
  {
    const ExtractorResult e =
        bench_extractor(diag, quick ? 500 : 2000, diag.run_duration_s);
    std::printf("extractor: %.3g samples/s, peak %zu buffered values\n",
                e.samples_per_sec, e.peak_buffered);
    // Bound: every feature metric holds at most the in-window sample
    // count; anything near O(rounds x duration) means the reset() path
    // leaks history between scenarios.
    const std::size_t bound = hpas::ml::diagnosis_feature_metrics(false).size()
                              * (e.window_values + 2);
    if (e.peak_buffered > bound) {
      std::fprintf(stderr,
                   "FAIL: extractor retained %zu values (bound %zu) -- "
                   "buffer grows beyond the window\n",
                   e.peak_buffered, bound);
      ++failures;
    }
    hpas::Json section = hpas::Json::object();
    section.set("samples_per_sec", e.samples_per_sec);
    section.set("samples", e.samples);
    section.set("peak_buffered_values", e.peak_buffered);
    doc.set("extractor", std::move(section));
  }

  // Spot bit-equality: streamed vs batch feature vectors.
  {
    const EqualityResult eq = bench_equality(diag, quick ? 3 : 6);
    std::printf("equality: %d/%d diagnosis runs bit-identical\n",
                eq.runs - eq.mismatches, eq.runs);
    if (eq.mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL: %d of %d streamed feature vectors differ from "
                   "the batch extractor\n",
                   eq.mismatches, eq.runs);
      ++failures;
    }
    hpas::Json section = hpas::Json::object();
    section.set("runs", eq.runs);
    section.set("mismatches", eq.mismatches);
    doc.set("equality", std::move(section));
  }

  // Scale demo: small run to establish the RSS floor, then the 10x run.
  {
    const hpas::runner::SweepGrid grid = demo_grid();
    const std::uint64_t big_rows = quick ? 10000 : 100000;
    const std::uint64_t small_rows = big_rows / 10;
    const int threads =
        static_cast<int>(std::thread::hardware_concurrency());

    const auto base = std::filesystem::temp_directory_path() /
                      ("hpas_bench_dataset_" + std::to_string(::getpid()));
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base);

    const FactoryResult small =
        bench_factory(grid, small_rows, threads, base / "small");
    const FactoryResult big =
        bench_factory(grid, big_rows, threads, base / "big");
    std::filesystem::remove_all(base);

    std::printf(
        "factory: %llu rows in %.2fs (%.3g rows/s, %.1f bytes/row, "
        "%llu samples streamed, peak %zu buffered values/row)\n",
        static_cast<unsigned long long>(big.rows), big.wall_s,
        big.rows_per_sec, big.bytes_per_row,
        static_cast<unsigned long long>(big.samples_seen),
        big.peak_buffered_values);
    const double rss_delta_mib =
        (static_cast<double>(big.peak_rss_after) -
         static_cast<double>(small.peak_rss_after)) /
        (1024.0 * 1024.0);
    std::printf("factory: peak RSS %.1f MiB after %llux rows vs %.1f MiB "
                "(delta %.1f MiB)\n",
                static_cast<double>(big.peak_rss_after) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(big_rows / small_rows),
                static_cast<double>(small.peak_rss_after) /
                    (1024.0 * 1024.0),
                rss_delta_mib);

    if (!small.complete || !big.complete || big.rows != big_rows) {
      std::fprintf(stderr, "FAIL: factory run incomplete (%llu/%llu rows)\n",
                   static_cast<unsigned long long>(big.rows),
                   static_cast<unsigned long long>(big_rows));
      ++failures;
    }
    // Flat-memory contract: 10x the rows must not move peak RSS by more
    // than a fixed allowance. The extraction/writer path is O(metrics x
    // window) per in-flight row; what does scale with rows is the
    // materialized plan row list itself (~350 B/spec), which the
    // allowance covers at this scale. VmHWM is monotonic, so the delta
    // isolates the big run's growth.
    if (big.peak_rss_after != 0 && rss_delta_mib > 256.0) {
      std::fprintf(stderr,
                   "FAIL: peak RSS grew %.1f MiB between %llu and %llu "
                   "rows -- memory is not flat in row count\n",
                   rss_delta_mib,
                   static_cast<unsigned long long>(small_rows),
                   static_cast<unsigned long long>(big_rows));
      ++failures;
    }

    hpas::Json section = hpas::Json::object();
    section.set("rows", big.rows);
    section.set("threads", threads);
    section.set("wall_s", big.wall_s);
    section.set("rows_per_sec", big.rows_per_sec);
    section.set("bytes_per_row", big.bytes_per_row);
    section.set("shard_bytes", big.shard_bytes);
    section.set("samples_seen", big.samples_seen);
    section.set("peak_buffered_values", big.peak_buffered_values);
    section.set("small_rows", small.rows);
    section.set("small_peak_rss_bytes", small.peak_rss_after);
    section.set("peak_rss_delta_mib", rss_delta_mib);
    doc.set("factory", std::move(section));
  }

  doc.set("peak_rss_bytes", hpas::peak_rss_bytes());
  std::printf("peak RSS: %.1f MiB\n",
              static_cast<double>(hpas::peak_rss_bytes()) / (1024.0 * 1024.0));

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << doc.dump(2);
  std::printf("wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}
