// Ablation: why is the Fig. 6 bandwidth reduction *limited*?
//
// The paper attributes it to Voltrino's "many redundant links and
// adaptive routing". Our network model folds both into the inter-switch
// trunk capacity. This ablation re-runs the Fig. 6 experiment (8 MB
// messages, 0..3 netoccupy pairs) on three interconnects:
//   rich   -- the Voltrino-like trunk (1.8x one NIC): redundancy present;
//   minimal-- a single-link trunk (1.0x one NIC): no redundancy, i.e.
//             what static minimal routing over one path would give;
//   star   -- the Chameleon-like single switch, where the OSU pair and
//             the anomaly pairs only share the central switch.
// Expected: the rich fabric degrades gracefully; the minimal fabric
// collapses to 1/(pairs+1); the star shows no cross-pair contention.
#include <cstdio>

#include "apps/osu_bw.hpp"
#include "sim/world.hpp"
#include "simanom/injectors.hpp"

namespace {

double osu_bw_gbs(hpas::sim::Topology topology, int osu_src, int osu_dst,
                  int anomaly_pairs, int pair_stride) {
  hpas::sim::World world(hpas::sim::NodeConfig{}, std::move(topology),
                         hpas::sim::FsConfig{});
  for (int pair = 0; pair < anomaly_pairs; ++pair) {
    hpas::simanom::inject_netoccupy(world, 1 + pair, 1 + pair + pair_stride,
                                    /*ntasks=*/1, 100.0 * 1024 * 1024,
                                    /*duration=*/1e6);
  }
  hpas::apps::OsuBandwidth osu(world, {.src_node = osu_src,
                                       .dst_node = osu_dst,
                                       .message_sizes = {8.0 * 1024 * 1024},
                                       .window = 16,
                                       .msg_latency_s = 15e-6});
  osu.run_to_completion();
  return osu.results()[0] / 1e9;
}

}  // namespace

int main() {
  using hpas::sim::Topology;
  std::printf(
      "== Ablation: interconnect redundancy vs. netoccupy damage ==\n"
      "(OSU bandwidth, GB/s, 8 MB messages)\n\n");
  std::printf("%-28s %8s %8s %8s %8s\n", "fabric", "0 pairs", "1 pair",
              "2 pairs", "3 pairs");

  auto run_row = [](const char* label, auto make_topo, int dst, int stride) {
    std::printf("%-28s", label);
    for (int pairs = 0; pairs <= 3; ++pairs) {
      std::printf(" %8.2f", osu_bw_gbs(make_topo(), 0, dst, pairs, stride));
    }
    std::printf("\n");
  };

  run_row("two-tier, redundant trunk",
          [] { return Topology::two_tier(2, 4, 10e9, 18e9); }, 4, 4);
  run_row("two-tier, single link",
          [] { return Topology::two_tier(2, 4, 10e9, 10e9); }, 4, 4);
  run_row("star (single switch)",
          [] { return Topology::star(8, 10e9); }, 4, 4);
  run_row("dragonfly (1 global link)",
          [] { return Topology::dragonfly(2, 2, 2, 10e9, 40e9, 15e9); }, 4,
          4);

  std::printf(
      "\ntakeaway: with a single inter-switch link the anomaly starves the\n"
      "application (1/(n+1) scaling); the redundant, adaptively-routed\n"
      "trunk keeps the reduction bounded (the paper's Fig. 6 result); a\n"
      "star fabric isolates pairs entirely.\n");
  return 0;
}
