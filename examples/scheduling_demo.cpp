// scheduling_demo: evaluate a job-allocation policy under controlled
// anomalies -- the paper's use case 2 (Sec. 5.2).
//
// HPAS's pitch: because the anomalies are *injected*, you can change the
// CPU-load and free-memory components independently and watch how a
// policy responds. This demo sweeps the cpuoccupy intensity on node 0
// and reports which nodes WBAS picks and the resulting job time,
// compared against Round-Robin.
#include <cstdio>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "sched/monitor.hpp"
#include "sched/policies.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

double run_with_policy(const hpas::sched::AllocationPolicy& policy,
                       double hog_utilization_pct, std::string* picked) {
  auto world = hpas::sim::make_voltrino_world();
  if (hog_utilization_pct > 0.0) {
    hpas::simanom::inject_cpuoccupy(*world, 0, 0, hog_utilization_pct, 1e6);
  }
  hpas::sched::NodeMonitor monitor(*world, 10.0);
  monitor.start();
  world->run_until(60.0);

  const auto nodes = policy.select_nodes(monitor.status(), 4);
  *picked = "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) *picked += ",";
    *picked += std::to_string(nodes[i]);
  }
  *picked += "]";

  hpas::apps::AppSpec spec = hpas::apps::app_by_name("miniGhost");
  spec.iterations = 60;
  hpas::apps::BspApp app(*world, spec,
                         {.nodes = nodes, .ranks_per_node = 4,
                          .first_core = 0});
  return app.run_to_completion();
}

}  // namespace

int main() {
  const hpas::sched::RoundRobinPolicy rr;
  const hpas::sched::WbasPolicy wbas;

  std::printf("%-14s %-12s %10s %-12s %10s\n", "hog intensity", "RR nodes",
              "RR time", "WBAS nodes", "WBAS time");
  for (const double intensity : {0.0, 50.0, 100.0}) {
    std::string rr_nodes, wbas_nodes;
    const double rr_time = run_with_policy(rr, intensity, &rr_nodes);
    const double wbas_time = run_with_policy(wbas, intensity, &wbas_nodes);
    std::printf("%12.0f%% %-12s %9.1fs %-12s %9.1fs\n", intensity,
                rr_nodes.c_str(), rr_time, wbas_nodes.c_str(), wbas_time);
  }
  std::printf(
      "\nWBAS routes around the hogged node as soon as the monitor sees\n"
      "the load; Round-Robin keeps landing on it.\n");
  return 0;
}
