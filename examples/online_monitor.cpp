// online_monitor: continuous anomaly diagnosis on a live system.
//
// The production loop the paper's framework targets: train offline on
// labeled HPAS runs, then watch a running cluster and name the root
// cause whenever a node deviates. Here the "cluster" is the simulated
// Voltrino and the incident is scripted -- a memleak that starts at
// t=120s and is killed (OOM) around t=400s -- but the monitoring path is
// exactly what a deployment would run against LDMS data.
#include <cstdio>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "ml/diagnosis.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

int main() {
  // ---- offline: train on labeled synthetic runs. ---------------------
  std::printf("training diagnosis model on labeled HPAS runs...\n");
  hpas::ml::DiagnosisDataOptions training;
  training.classes = {"none", "memleak", "cpuoccupy", "membw"};
  training.variants_per_app = 2;
  training.measurement_noise = 0.0;  // match the online extraction
  const hpas::ml::OnlineDiagnoser diagnoser(
      hpas::ml::generate_diagnosis_dataset(training),
      {.window_s = 45.0, .hop_s = 30.0, .include_bandwidth_metrics = false});

  // ---- "production": an app runs; trouble arrives at t=120s. ---------
  std::printf("running the cluster (memleak incident at t=120s)...\n\n");
  auto world = hpas::sim::make_voltrino_world();
  world->enable_monitoring(1.0);
  hpas::apps::AppSpec spec = hpas::apps::app_by_name("miniAMR");
  spec.iterations = 1000000;
  hpas::apps::BspApp app(*world, spec,
                         {.nodes = {0, 4}, .ranks_per_node = 4,
                          .first_core = 0});
  world->simulator().schedule_in(120.0, [&world] {
    hpas::simanom::inject_memleak(*world, 0, 8, 400.0 * 1024 * 1024, 1.0,
                                  600.0);
  });
  world->run_until(360.0);

  // ---- diagnose the monitoring stream window by window. --------------
  std::printf("%10s %10s   %s\n", "window", "", "diagnosis (node 0)");
  int alerts = 0;
  for (const auto& window :
       diagnoser.diagnose(world->node_store(0), 0.0, 360.0)) {
    const char* verdict = diagnoser.class_name(window.label);
    const bool alert = std::string(verdict) != "none";
    alerts += alert ? 1 : 0;
    std::printf("%7.0fs - %5.0fs   %s%s\n", window.t0, window.t1, verdict,
                alert ? "   <-- ALERT" : "");
  }
  std::printf("\n%d alert window(s); the leak was injected at t=120s.\n",
              alerts);
  return 0;
}
