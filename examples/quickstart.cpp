// Quickstart: the two faces of HPAS in ~60 lines.
//
//  1. Run a *native* anomaly generator on this machine (exactly what
//     `hpas cpuoccupy -u 75 -d 2s` does), and
//  2. inject the *simulated* counterpart into a modeled Cray-like cluster
//     and watch the monitoring layer see it.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "anomalies/cpuoccupy.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

int main() {
  // ---- 1. Native generator: occupy 75% of one host core for 2 s. -----
  std::printf("[1/2] running native cpuoccupy (75%% of one core, 2s)...\n");
  hpas::anomalies::CpuOccupyOptions native_opts;
  native_opts.utilization_pct = 75.0;
  native_opts.common.duration_s = 2.0;
  hpas::anomalies::CpuOccupy native(native_opts);
  const auto stats = native.run();
  std::printf("      %llu duty cycles, %.2e arithmetic ops, busy %.0f%% of "
              "the run\n",
              static_cast<unsigned long long>(stats.iterations),
              stats.work_amount,
              stats.active_seconds / stats.elapsed_seconds * 100.0);

  // ---- 2. Simulated cluster: same anomaly, observed by monitoring. ---
  std::printf("[2/2] injecting cpuoccupy into the simulated Voltrino...\n");
  auto world = hpas::sim::make_voltrino_world();
  world->enable_monitoring(1.0);  // LDMS-like 1 Hz samplers per node
  hpas::simanom::inject_cpuoccupy(*world, /*node=*/0, /*core=*/0,
                                  /*utilization=*/75.0, /*duration=*/30.0);
  world->run_until(30.0);

  const auto& user = world->node_store(0).series({"user", "procstat"});
  const auto deltas = user.deltas();
  double busy_jiffies = 0;
  for (const double d : deltas) busy_jiffies += d;
  std::printf("      user::procstat says the node burned %.1f core-seconds "
              "in 30 s (expected ~22.5)\n",
              busy_jiffies / 100.0);
  std::printf("done. explore `hpas list` and bench/ for the full suite.\n");
  return 0;
}
