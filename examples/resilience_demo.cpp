// resilience_demo: make an application resilient to performance
// variability -- the paper's use case 3 (Sec. 5.3).
//
// Two parts:
//  1. Probe an application's sensitivity per subsystem: run miniGhost
//     against each simulated anomaly and report the slowdown. This tells
//     a developer *which* contention to defend against.
//  2. Defend: switch the over-decomposed stencil from an object-count
//     balancer to the capacity-measuring GreedyRefineLB and quantify the
//     win under increasing cpuoccupy pressure.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/bsp_app.hpp"
#include "apps/profiles.hpp"
#include "lb/balancers.hpp"
#include "lb/stencil.hpp"
#include "sim/cluster.hpp"
#include "simanom/injectors.hpp"

namespace {

double minighost_time(const std::string& anomaly) {
  auto world = hpas::sim::make_voltrino_world();
  if (anomaly != "none") {
    const int core = (anomaly == "cpuoccupy" || anomaly == "cachecopy") ? 0 : 8;
    hpas::simanom::inject_by_name(*world, anomaly, 0, core, 1e6);
  }
  hpas::apps::AppSpec spec = hpas::apps::app_by_name("miniGhost");
  spec.iterations = 50;
  hpas::apps::BspApp app(*world, spec,
                         {.nodes = {0, 4}, .ranks_per_node = 4,
                          .first_core = 0});
  return app.run_to_completion();
}

}  // namespace

int main() {
  std::printf("-- 1. sensitivity probe: miniGhost slowdown per anomaly --\n");
  const double baseline = minighost_time("none");
  for (const std::string anomaly :
       {"cpuoccupy", "cachecopy", "membw", "memeater", "memleak"}) {
    const double t = minighost_time(anomaly);
    std::printf("  %-11s %6.1fs  (%.2fx)\n", anomaly.c_str(), t,
                t / baseline);
  }
  std::printf("  baseline    %6.1fs\n\n", baseline);

  std::printf("-- 2. defense: capacity-aware load balancing --\n");
  const hpas::lb::StencilExperiment experiment;
  const hpas::lb::LbObjOnly naive;
  const hpas::lb::GreedyRefineLb aware;
  std::printf("  %12s %12s %14s %8s\n", "intensity(%)", "naive s/it",
              "capacity-aware", "win");
  for (const int pct : {0, 400, 800, 1600}) {
    const double t_naive = experiment.time_per_iteration(naive, pct);
    const double t_aware = experiment.time_per_iteration(aware, pct);
    std::printf("  %12d %12.4f %14.4f %7.0f%%\n", pct, t_naive, t_aware,
                (1.0 - t_aware / t_naive) * 100.0);
  }
  std::printf(
      "\ntakeaway: miniGhost is memory/cache-sensitive, and measuring\n"
      "capacity before balancing absorbs most of the CPU interference.\n");
  return 0;
}
