// diagnosis_demo: train an anomaly-diagnosis model on synthetic HPAS data
// and use it to classify an unlabeled run -- the paper's use case 1
// (Sec. 5.1) as a ~5-second program.
//
// Pipeline: simulated runs (apps x anomalies) -> LDMS-like monitoring ->
// statistical features -> RandomForest -> diagnose a fresh run.
#include <cstdio>

#include "ml/diagnosis.hpp"
#include "ml/random_forest.hpp"

int main() {
  // Small but representative dataset: 4 classes, 8 apps, 2 variants.
  hpas::ml::DiagnosisDataOptions options;
  options.classes = {"none", "memleak", "cpuoccupy", "membw"};
  options.variants_per_app = 2;
  options.run_duration_s = 45.0;

  std::printf("generating labeled runs (%d classes x 8 apps x %d)...\n",
              static_cast<int>(options.classes.size()),
              options.variants_per_app);
  const auto data = hpas::ml::generate_diagnosis_dataset(options);
  std::printf("dataset: %zu samples, %zu features\n", data.size(),
              data.num_features());

  // Cross-validated scores, then a model trained on everything.
  const auto scores = hpas::ml::evaluate_classifiers(data, /*k_folds=*/3);
  for (const auto& model : scores) {
    std::printf("  %-14s overall F1 = %.2f\n", model.classifier.c_str(),
                model.overall_f1);
  }

  hpas::ml::RandomForest forest;
  forest.fit(data);

  // "Production": new runs arrive without labels; diagnose them.
  // We reuse the generator with a different seed as the unlabeled stream.
  hpas::ml::DiagnosisDataOptions unseen = options;
  unseen.seed = 0xBEEF;
  unseen.variants_per_app = 1;
  const auto fresh = hpas::ml::generate_diagnosis_dataset(unseen);
  int correct = 0;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const int predicted = forest.predict(fresh.row(i));
    if (predicted == fresh.labels[i]) ++correct;
  }
  std::printf("diagnosed %d/%zu unseen runs correctly\n", correct,
              fresh.size());
  return 0;
}
